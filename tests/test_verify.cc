/**
 * @file
 * Tests for the model-integrity verifier: the contract framework
 * (check.hh), the request-lifecycle checker, the NVM pipeline
 * invariant checker, the online DDR4 checker mode, and -- most
 * importantly -- the negative tests proving each checker actually
 * catches the corruption it exists for. A checker whose failure path
 * is never exercised is indistinguishable from no checker at all.
 */

#include <gtest/gtest.h>

#include "common/check.hh"
#include "common/event_queue.hh"
#include "common/lifecycle.hh"
#include "common/stats.hh"
#include "dram/checker.hh"
#include "dram/controller.hh"
#include "lens/microbench.hh"
#include "nvram/nvm_checker.hh"
#include "tests/test_util.hh"

using namespace vans;
using vans::test::VansFixture;

// ---- Contract framework -------------------------------------------

TEST(CheckFramework, SitesRegisterAndCountHits)
{
    std::size_t sites_before = verify::siteCount();
    std::uint64_t hits_before = verify::totalCheckHits();

    for (int i = 0; i < 5; ++i)
        VANS_REQUIRE("test", 0, i >= 0, "impossible %d", i);

    // The loop body expands one site, hit five times. Release
    // builds register sites but skip the hit counting.
    EXPECT_GE(verify::siteCount(), sites_before + 1);
#ifdef VANS_ENABLE_AUDITS
    EXPECT_GE(verify::totalCheckHits(), hits_before + 5);
#else
    EXPECT_GE(verify::totalCheckHits(), hits_before);
#endif
}

TEST(CheckFramework, StatsExportNamesSites)
{
    VANS_INVARIANT("test.stats", 0, true, "never fails");
    StatGroup stats("checks");
    verify::checkStatsInto(stats);
    // The site above must appear under a name carrying its subsystem.
    EXPECT_NE(stats.dump().find("test.stats"), std::string::npos);
}

TEST(CheckFrameworkDeath, RequirePanicsWithContext)
{
    EXPECT_DEATH(
        VANS_REQUIRE("test.fatal", 42, 1 == 2, "%d != %d", 1, 2),
        "require violated.*test\\.fatal.*tick=42");
}

TEST(CheckFramework, MonitorAccumulatesWhenNotFailFast)
{
    verify::Monitor mon(/*fail_fast=*/false);
    EXPECT_TRUE(mon.clean());
    mon.report({"sub", "rule-a", "first", 10});
    mon.report({"sub", "rule-a", "second", 20});
    mon.report({"sub", "rule-b", "third", 30});
    EXPECT_FALSE(mon.clean());
    EXPECT_EQ(mon.reported(), 3u);
    EXPECT_EQ(mon.countRule("rule-a"), 2u);
    EXPECT_EQ(mon.countRule("rule-b"), 1u);
    EXPECT_NE(mon.failures()[0].str().find("rule-a"),
              std::string::npos);
    mon.clear();
    EXPECT_TRUE(mon.clean());
}

TEST(CheckFrameworkDeath, MonitorFailFastPanics)
{
    verify::Monitor mon(/*fail_fast=*/true);
    EXPECT_DEATH(mon.report({"sub", "boom", "detail", 1}),
                 "verification failure.*boom");
}

// ---- Event-queue contracts ----------------------------------------

TEST(EventQueueDeath, PastTickScheduleIsRejected)
{
    EventQueue eq;
    eq.schedule(1000, [] {});
    while (eq.step()) {
    }
    ASSERT_EQ(eq.curTick(), 1000u);
    EXPECT_DEATH(eq.schedule(999, [] {}), "eventq.*past");
}

// ---- Request lifecycle checker ------------------------------------

namespace
{

// The lifecycle checker is id-keyed and never owns requests, so a
// plain stack descriptor is all these unit tests need.
Request
issuedReq(std::uint64_t id, Tick issue_tick)
{
    Request r;
    r.addr = 0x1000;
    r.op = MemOp::ReadNT;
    r.id = id;
    r.issueTick = issue_tick;
    return r;
}

} // namespace

TEST(Lifecycle, CleanRunHasNoFindings)
{
    EventQueue eq;
    verify::Monitor mon(false);
    verify::RequestLifecycleChecker chk(eq, mon);

    auto r = issuedReq(1, 0);
    chk.onIssue(r);
    chk.onQueued(r);
    chk.onServiced(r);
    chk.onRetire(r);
    chk.finalCheck(true);

    EXPECT_TRUE(mon.clean());
    EXPECT_EQ(chk.issued(), 1u);
    EXPECT_EQ(chk.retired(), 1u);
    EXPECT_EQ(chk.inFlight(), 0u);
    EXPECT_EQ(chk.peakInFlight(), 1u);
}

TEST(Lifecycle, DoubleRetireCaught)
{
    EventQueue eq;
    verify::Monitor mon(false);
    verify::RequestLifecycleChecker chk(eq, mon);

    auto r = issuedReq(1, 0);
    chk.onIssue(r);
    chk.onRetire(r);
    chk.onRetire(r); // The bug: completion callback fired twice.

    EXPECT_EQ(mon.countRule("double-retire"), 1u);
    EXPECT_EQ(mon.reported(), 1u);
}

TEST(Lifecycle, CompleteBeforeIssueCaught)
{
    EventQueue eq;
    eq.schedule(500, [] {});
    while (eq.step()) {
    }
    verify::Monitor mon(false);
    verify::RequestLifecycleChecker chk(eq, mon);

    auto r = issuedReq(1, 400);
    chk.onIssue(r);
    r.completeTick = 300; // Before its own issue tick.
    chk.onRetire(r);

    EXPECT_EQ(mon.countRule("complete-before-issue"), 1u);
}

TEST(Lifecycle, StaleIdCaught)
{
    EventQueue eq;
    verify::Monitor mon(false);
    verify::RequestLifecycleChecker chk(eq, mon);

    auto a = issuedReq(5, 0);
    chk.onIssue(a);
    auto b = issuedReq(5, 0); // Re-used id.
    chk.onIssue(b);

    EXPECT_EQ(mon.countRule("stale-id"), 1u);
    EXPECT_EQ(mon.countRule("double-issue"), 1u);
    EXPECT_EQ(mon.reported(), 2u);
}

TEST(Lifecycle, StageRegressionCaught)
{
    EventQueue eq;
    verify::Monitor mon(false);
    verify::RequestLifecycleChecker chk(eq, mon);

    auto r = issuedReq(1, 0);
    chk.onIssue(r);
    chk.onServiced(r);
    chk.onQueued(r); // Data returned, then back into a queue?

    EXPECT_EQ(mon.countRule("stage-regression"), 1u);
}

TEST(Lifecycle, LostRequestCaughtOnDrain)
{
    EventQueue eq;
    verify::Monitor mon(false);
    verify::RequestLifecycleChecker chk(eq, mon);

    auto r = issuedReq(1, 0);
    chk.onIssue(r);

    chk.finalCheck(/*queue_drained=*/false);
    EXPECT_TRUE(mon.clean()); // Cut-off runs keep requests in flight.

    chk.finalCheck(/*queue_drained=*/true);
    EXPECT_EQ(mon.countRule("lost-request"), 1u);
}

// ---- NVM invariant checker (fabricated snapshots) ------------------

namespace
{

struct InvFixture
{
    InvFixture()
        : cfg(nvram::NvramConfig::optaneDefault()),
          mon(false),
          chk(eq, cfg, mon)
    {}

    EventQueue eq;
    nvram::NvramConfig cfg;
    verify::Monitor mon;
    nvram::NvmInvariantChecker chk;
};

} // namespace

TEST(NvmInvariants, CleanSnapshotReportsNothing)
{
    InvFixture f;
    nvram::Occupancy o;
    o.wpq = f.cfg.wpqEntries; // At capacity is legal...
    o.lsq = f.cfg.lsqEntries;
    o.rmw = f.cfg.rmwEntries;
    o.aitIntake = 4;
    o.aitIntakeCap = 4;
    f.chk.auditOccupancy(o, 0, 0);
    EXPECT_TRUE(f.mon.clean());
}

TEST(NvmInvariants, OverCapacityLsqCaught)
{
    InvFixture f;
    nvram::Occupancy o;
    o.lsq = f.cfg.lsqEntries + 1; // ...one past capacity is not.
    f.chk.auditOccupancy(o, 0, 7);
    EXPECT_EQ(f.mon.countRule("lsq-capacity"), 1u);
    EXPECT_EQ(f.mon.reported(), 1u); // Exactly the intended rule.
    EXPECT_EQ(f.mon.failures()[0].tick, 7u);
}

TEST(NvmInvariants, OverCapacityWpqCaught)
{
    InvFixture f;
    nvram::Occupancy o;
    o.wpq = f.cfg.wpqEntries + 1;
    f.chk.auditOccupancy(o, 2, 0);
    EXPECT_EQ(f.mon.countRule("wpq-capacity"), 1u);
    EXPECT_EQ(f.mon.reported(), 1u);
    EXPECT_EQ(f.mon.failures()[0].subsystem, "nvram.dimm2");
}

TEST(NvmInvariants, OverCapacityRmwAndAitCaught)
{
    InvFixture f;
    nvram::Occupancy o;
    o.rmw = f.cfg.rmwEntries + 3;
    o.aitBuf = f.cfg.aitBufEntries + 1;
    o.aitIntake = 5;
    o.aitIntakeCap = 4;
    f.chk.auditOccupancy(o, 0, 0);
    EXPECT_EQ(f.mon.countRule("rmw-capacity"), 1u);
    EXPECT_EQ(f.mon.countRule("ait-buffer-capacity"), 1u);
    EXPECT_EQ(f.mon.countRule("ait-intake-capacity"), 1u);
    EXPECT_EQ(f.mon.reported(), 3u);
}

TEST(NvmInvariants, WearAccountingCaught)
{
    InvFixture f;
    nvram::WearState w;
    w.migrations = 3;
    w.mediaWrites = 2 * f.cfg.wearThreshold; // One migration unpaid.
    f.chk.auditWear(w, 0, 0);
    EXPECT_EQ(f.mon.countRule("wear-accounting"), 1u);

    // Exactly paid-for migrations are legal.
    f.mon.clear();
    w.mediaWrites = 3 * f.cfg.wearThreshold;
    f.chk.auditWear(w, 0, 0);
    EXPECT_TRUE(f.mon.clean());
}

TEST(NvmInvariants, StaleMigrationCaught)
{
    InvFixture f;
    nvram::WearState w;
    w.active = 1;
    w.earliestEnd = 100; // The "now" below is already past this.
    f.chk.auditWear(w, 0, 500);
    EXPECT_EQ(f.mon.countRule("stale-migration"), 1u);

    f.mon.clear();
    w.earliestEnd = 900; // Ends in the future: fine.
    f.chk.auditWear(w, 0, 500);
    EXPECT_TRUE(f.mon.clean());
}

// ---- Verified end-to-end runs -------------------------------------

TEST(VerifiedRun, ConfigKnobAttachesVerifier)
{
    nvram::NvramConfig cfg = test::smallConfig();
    cfg.verify = true;
    VansFixture f(cfg);
    ASSERT_NE(f.sys.verifier(), nullptr);
}

TEST(VerifiedRun, TrafficStaysCleanAndIsAudited)
{
    nvram::NvramConfig cfg = test::smallConfig();
    cfg.verify = true;
    VansFixture f(cfg);
    ASSERT_NE(f.sys.verifier(), nullptr);

    for (int i = 0; i < 64; ++i) {
        f.drv.write(0x10000 + i * 64);
        f.drv.read(0x10000 + i * 64);
    }
    f.drv.fence();

    auto &v = *f.sys.verifier();
    EXPECT_TRUE(v.monitor().clean());
    EXPECT_GE(v.lifecycle().issued(), 128u);
    EXPECT_EQ(v.lifecycle().issued(), v.lifecycle().retired());
    EXPECT_EQ(v.lifecycle().inFlight(), 0u);
    EXPECT_GT(v.invariants().audits(), 0u);
    EXPECT_GT(v.stats().scalarValue("requests_issued"), 0.0);
}

TEST(VerifiedRun, WearMigrationsStayAccounted)
{
    nvram::NvramConfig cfg = test::smallConfig(); // wearThreshold 500.
    cfg.verify = true;
    VansFixture f(cfg);

    // Hammer one 256B region past the wear threshold so migrations
    // actually happen while the verifier audits every completion.
    lens::overwrite(f.drv, 0, 256, 1200);
    f.drv.fence();

    EXPECT_GE(f.sys.totalMigrations(), 1u);
    EXPECT_TRUE(f.sys.verifier()->monitor().clean());
}

// ---- DDR4 checker: online mode + extra illegal streams -------------

TEST(OnlineDdr4, ControllerSelfChecksWhenEnabled)
{
    EventQueue eq;
    dram::DramGeometry geom;
    dram::DramController ctrl(eq, dram::DramTiming::ddr4_2666(), geom,
                              dram::SchedPolicy::FRFCFS,
                              dram::MapScheme::RowBankCol, "dut");
    ctrl.enableOnlineCheck();
    ASSERT_NE(ctrl.onlineChecker(), nullptr);

    unsigned done = 0;
    for (unsigned i = 0; i < 200; ++i)
        ctrl.access(i * 64, i % 3 == 0, 64, [&done](Tick) { ++done; });
    while (done < 200 && eq.step()) {
    }
    ASSERT_EQ(done, 200u);

    EXPECT_GT(ctrl.onlineChecker()->commandsChecked(), 0u);
    EXPECT_TRUE(ctrl.onlineChecker()->violations().empty());
}

TEST(OnlineDdr4, IncrementalMatchesBatch)
{
    auto t = dram::DramTiming::ddr4_2666();
    dram::DramGeometry g;
    // An illegal stream: premature CAS + ACT on an open bank.
    std::vector<dram::DramCommand> cmds = {
        {0, dram::DramCmd::ACT, 0, 0, 0, 1, 0},
        {t.cyc(2), dram::DramCmd::RD, 0, 0, 0, 1, 0},
        {t.cyc(100), dram::DramCmd::ACT, 0, 0, 0, 2, 0},
    };

    dram::Ddr4Checker batch(t, g);
    auto bv = batch.check(cmds);
    ASSERT_FALSE(bv.empty());

    dram::Ddr4Checker online(t, g);
    for (const auto &c : cmds)
        online.feed(c);

    ASSERT_EQ(online.violations().size(), bv.size());
    for (std::size_t i = 0; i < bv.size(); ++i) {
        EXPECT_EQ(online.violations()[i].rule, bv[i].rule);
        EXPECT_EQ(online.violations()[i].cmdIndex, bv[i].cmdIndex);
    }
    EXPECT_EQ(online.commandsChecked(), cmds.size());
}

TEST(Checker, CatchesTrpViolation)
{
    auto t = dram::DramTiming::ddr4_2666();
    dram::DramGeometry g;
    dram::Ddr4Checker checker(t, g);
    // PRE is legal (tRAS satisfied), but the re-activation comes only
    // five cycles later: tRP demands more. The ACT-to-ACT gap of 105
    // cycles keeps tRC satisfied, so exactly tRP fires.
    std::vector<dram::DramCommand> cmds = {
        {0, dram::DramCmd::ACT, 0, 0, 0, 1, 0},
        {t.cyc(100), dram::DramCmd::PRE, 0, 0, 0, 1, 0},
        {t.cyc(105), dram::DramCmd::ACT, 0, 0, 0, 2, 0},
    };
    auto v = checker.check(cmds);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "tRP");
    EXPECT_EQ(v[0].cmdIndex, 2u);
}

TEST(Checker, CatchesPreOnClosedBank)
{
    auto t = dram::DramTiming::ddr4_2666();
    dram::DramGeometry g;
    dram::Ddr4Checker checker(t, g);
    std::vector<dram::DramCommand> cmds = {
        {t.cyc(10), dram::DramCmd::PRE, 0, 0, 0, 0, 0},
    };
    auto v = checker.check(cmds);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "PRE-on-closed");
}

TEST(Checker, CatchesTrfcViolation)
{
    auto t = dram::DramTiming::ddr4_2666();
    dram::DramGeometry g;
    dram::Ddr4Checker checker(t, g);
    std::vector<dram::DramCommand> cmds = {
        {t.cyc(10), dram::DramCmd::REF, 0, 0, 0, 0, 0},
        // ACT before the refresh cycle time elapsed.
        {t.cyc(12), dram::DramCmd::ACT, 0, 0, 0, 1, 0},
    };
    auto v = checker.check(cmds);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].rule, "tRFC");
}

TEST(Checker, ResetClearsStreamState)
{
    auto t = dram::DramTiming::ddr4_2666();
    dram::DramGeometry g;
    dram::Ddr4Checker checker(t, g);
    checker.feed({0, dram::DramCmd::RD, 0, 0, 0, 1, 0});
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].rule, "CAS-on-closed");

    checker.reset();
    EXPECT_TRUE(checker.violations().empty());
    EXPECT_EQ(checker.commandsChecked(), 0u);
    // The same first command fails identically after a reset.
    checker.feed({0, dram::DramCmd::RD, 0, 0, 0, 1, 0});
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].cmdIndex, 0u);
}
