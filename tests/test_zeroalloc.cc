/**
 * @file
 * Allocation-count regression test for the pooled request path.
 *
 * Global counting operator new/delete hooks measure the steady-state
 * window of a fig05-style workload (warm read hits plus merging
 * non-temporal rewrites and a fence) and assert ZERO heap allocations
 * after warmup: the request pool recycles slots, the IMC queues run
 * on grown-in-place rings, completion callbacks stay inside
 * InplaceFunction's inline buffer, and the event kernel reuses its
 * callback slab.
 *
 * Runs as its own executable -- not under gtest -- so nothing but the
 * simulator touches the heap inside the measured region, and it
 * unsets VANS_VERIFY/VANS_TRACE before building the world: verified
 * and traced runs wrap completion callbacks with captures that
 * deliberately spill (observability is allowed to allocate).
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <execinfo.h>
#include <new>
#include <vector>

#include "common/logging.hh"
#include "lens/driver.hh"
#include "nvram/vans_system.hh"

namespace
{

std::atomic<std::uint64_t> g_newCalls{0};

/** Armed under VANS_ZEROALLOC_TRAP=1: abort at the first allocation
 *  inside the measured window so a debugger shows the site. */
std::atomic<bool> g_trap{false};

std::uint64_t
newCalls()
{
    return g_newCalls.load(std::memory_order_relaxed);
}

void *
countedAlloc(std::size_t size)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (g_trap.load(std::memory_order_relaxed)) {
        g_trap.store(false, std::memory_order_relaxed);
        void *frames[32];
        int n = backtrace(frames, 32);
        backtrace_symbols_fd(frames, n, 2);
        std::fputs("----\n", stderr);
        g_trap.store(true, std::memory_order_relaxed);
    }
    if (void *p = std::malloc(size ? size : 1))
        return p;
    std::abort();
}

void *
countedAllocAligned(std::size_t size, std::align_val_t align)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     size ? size : 1))
        return p;
    std::abort();
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}
void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}
void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAllocAligned(size, align);
}
void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAllocAligned(size, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace vans;

/**
 * One fig05-shaped steady-state round over a small footprint: read
 * hits against the warm RMW read cache, a merging non-temporal
 * rewrite burst into the same lines, and a fence that drains the
 * write-pending queues.
 */
void
steadyRound(lens::Driver &drv, const std::vector<Addr> &lines)
{
    for (Addr a : lines)
        drv.read(a);
    drv.streamReads(lines, 8);
    for (Addr a : lines)
        drv.write(a);
    drv.fence();
}

int
runTest()
{
    // ctest exports VANS_VERIFY=1 for the main suite; a verified or
    // traced world wraps callbacks with captures that spill to the
    // heap by design, so this test must build a plain world.
    unsetenv("VANS_VERIFY");
    unsetenv("VANS_TRACE");
    setQuiet(true);

    EventQueue eq;
    nvram::VansSystem sys(eq, nvram::NvramConfig::optaneDefault());
    lens::Driver drv(sys);

    std::vector<Addr> lines;
    for (Addr a = 0; a < 8 * cacheLineSize; a += cacheLineSize)
        lines.push_back(a);

    // Warmup: grow the pool, the IMC rings, the event slab and every
    // hazard scratch vector to their steady-state peak. Two rounds so
    // second-round growth (e.g. a ring doubling) is also absorbed.
    for (int round = 0; round < 3; ++round)
        steadyRound(drv, lines);

    std::uint64_t before = newCalls();
    if (const char *trap = std::getenv("VANS_ZEROALLOC_TRAP");
        trap && trap[0] == '1')
        g_trap.store(true, std::memory_order_relaxed);
    constexpr int measuredRounds = 20;
    for (int round = 0; round < measuredRounds; ++round)
        steadyRound(drv, lines);
    std::uint64_t delta = newCalls() - before;
    g_trap.store(false, std::memory_order_relaxed);

    std::uint64_t ops =
        static_cast<std::uint64_t>(measuredRounds) *
        (3 * lines.size() + 1);
    if (delta != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu heap allocation(s) across %llu "
                     "steady-state ops (expected 0)\n",
                     static_cast<unsigned long long>(delta),
                     static_cast<unsigned long long>(ops));
        return 1;
    }
    std::printf("PASS: 0 heap allocations across %llu steady-state "
                "ops (pool capacity %u, live %zu)\n",
                static_cast<unsigned long long>(ops),
                sys.pool().capacity(), sys.pool().live());
    return 0;
}

} // namespace

int
main()
{
    return runTest();
}
