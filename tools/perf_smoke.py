#!/usr/bin/env python3
"""Compare two bench_simperf JSON reports and fail on throughput regression.

Usage:
    tools/perf_smoke.py --baseline BENCH_simperf.json \
                        --candidate /tmp/candidate.json [--threshold 0.10]

For every benchmark present in both reports, compares items_per_second
(falling back to inverse real_time when a benchmark reports no items)
and exits non-zero if the candidate is more than --threshold below the
baseline. Benchmarks present on only one side are reported but never
fatal, so adding or retiring a benchmark does not break CI.

Microbenchmark noise on shared CI runners is real; the default 10%
threshold is meant to catch structural regressions (an allocation on
the hot path, a lost fast path), not scheduler jitter.

Benchmarks differ in how noisy they are: a single-threaded pool churn
loop is far steadier than a thread-fan-out bench on a shared runner.
--threshold-for NAME=FRAC (repeatable) overrides the global threshold
for one benchmark, so the gate can be tight where the signal is clean
and forgiving where the runner is the bottleneck.

With --normalize NAME, every throughput is divided by benchmark
NAME's throughput in the same report before comparing. This makes a
baseline recorded on one machine usable on a differently-clocked CI
runner: what is compared is each model's cost relative to raw event
kernel throughput, not absolute wall time. The reference benchmark
itself is then excluded from the verdict (its ratio is 1 by
construction).
"""

import argparse
import json
import sys


def load_throughputs(path):
    """Map benchmark name -> throughput proxy (higher is better).

    Reports produced with --benchmark_repetitions carry aggregate
    rows; the median aggregate is preferred over individual runs
    (it is what keeps the gate stable on noisy runners). Reports
    without repetitions fall back to the single run as before.
    """
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    out = {}
    medians = {}
    for bench in report.get("benchmarks", []):
        name = bench["name"]
        if "items_per_second" in bench:
            value = float(bench["items_per_second"])
        elif bench.get("real_time"):
            value = 1.0 / float(bench["real_time"])
        else:
            continue
        if bench.get("run_type") == "aggregate":
            if name.endswith("_median"):
                medians[name[:-len("_median")]] = value
            continue
        out[name] = value
    out.update(medians)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--candidate", required=True)
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max allowed fractional drop (default 0.10)")
    ap.add_argument("--threshold-for", metavar="NAME=FRAC",
                    action="append", default=[],
                    help="per-benchmark threshold override "
                         "(repeatable), e.g. BM_Vans6DimmSharded=0.25")
    ap.add_argument("--normalize", metavar="NAME", default=None,
                    help="divide throughputs by benchmark NAME's "
                         "(cross-machine comparison)")
    args = ap.parse_args()

    per_bench = {}
    for spec in args.threshold_for:
        name, sep, frac = spec.partition("=")
        try:
            if not sep:
                raise ValueError
            per_bench[name] = float(frac)
        except ValueError:
            print(f"error: bad --threshold-for '{spec}' "
                  "(want NAME=FRAC)", file=sys.stderr)
            return 2

    base = load_throughputs(args.baseline)
    cand = load_throughputs(args.candidate)

    if args.normalize:
        for side, name in ((base, args.baseline), (cand, args.candidate)):
            ref = side.get(args.normalize)
            if not ref:
                print(f"error: --normalize benchmark '{args.normalize}' "
                      f"missing from {name}", file=sys.stderr)
                return 2
            for k in side:
                side[k] /= ref
            del side[args.normalize]

    rows = []
    failures = []
    for name in sorted(set(base) | set(cand)):
        b = base.get(name)
        c = cand.get(name)
        if b is None:
            rows.append((name, "-", f"{c:.3g}", "new"))
            continue
        if c is None:
            rows.append((name, f"{b:.3g}", "-", "removed"))
            continue
        ratio = c / b if b else float("inf")
        threshold = per_bench.get(name, args.threshold)
        verdict = "ok"
        if ratio < 1.0 - threshold:
            verdict = "REGRESSED"
            failures.append((name, ratio, threshold))
        if name in per_bench:
            verdict += f" (thr {threshold:.0%})"
        rows.append((name, f"{b:.3g}", f"{c:.3g}", f"{ratio:.2f}x {verdict}"))

    widths = [max(len(r[i]) for r in rows + [("benchmark", "baseline",
                                             "candidate", "ratio")])
              for i in range(4)]
    header = ("benchmark", "baseline", "candidate", "ratio")
    for row in [header] + rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))

    if failures:
        print()
        for name, ratio, threshold in failures:
            print(f"FAIL: {name} at {ratio:.2f}x of baseline "
                  f"(threshold {1.0 - threshold:.2f}x)", file=sys.stderr)
        return 1
    print(f"\nperf-smoke OK ({len(rows)} benchmarks, "
          f"threshold {args.threshold:.0%}"
          + (f", {len(per_bench)} per-benchmark override(s)"
             if per_bench else "") + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
