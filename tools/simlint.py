#!/usr/bin/env python3
"""Simulator-specific lint for the VANS/LENS tree (launcher).

The implementation lives in the tools/simlint/ package: a small C++
declaration model (lexer + class/member/method extractor) feeding
per-line determinism rules and cross-file coverage rules
(snapshotcover, statscover, layering, hotpath). Run with --list-rules
for the catalog, --sarif for GitHub code-scanning output, --baseline
for the committed-debt workflow. See DESIGN.md "Static analysis".
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from simlint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
