#!/usr/bin/env python3
"""Simulator-specific lint for the VANS/LENS tree.

A discrete-event simulator has correctness rules a generic linter
does not know about. This one enforces five of them over src/:

  wallclock   No wall-clock time or ambient randomness in simulator
              code. Simulated time comes from the EventQueue and
              randomness from seeded Rng instances; anything else
              breaks run-to-run determinism (and with it, the
              figure-reproduction benches).

  stdfunction No std::function in the event-kernel headers. The
              kernel's zero-allocation contract depends on
              InplaceCallback; a std::function smuggled into the
              event path reintroduces per-event heap traffic.

  mutablestatic
              No unguarded mutable statics. Simulated systems run
              concurrently under parallelFor (the sweep runner), so
              any mutable static is shared state across simulations.
              const/constexpr/thread_local/std::atomic/std::mutex
              are fine; anything else needs an explicit
              `simlint-allow` comment on or above the declaration
              explaining why it is safe.

  tracebyvalue
              Components reference the trace recorder only through a
              raw `TraceRecorder *` (nullptr when tracing is off).
              A by-value member or a smart-pointer owner anywhere
              but the recorder's home (common/trace_event.*) and its
              single owner (nvram/vans_system.*) would either bloat
              every component with recorder state or create a second
              ownership root -- both break the near-zero disabled
              path the observability layer promises.

  shardshared No ad-hoc threading primitives in simulator code. The
              sharded kernel's determinism contract says all
              cross-shard communication flows through per-shard
              outboxes merged at the window barrier in (tick, shard,
              seq) order; a std::atomic / std::mutex / std::thread
              in a model file is cross-shard mutable state touched
              outside that merge path, which silently trades
              bit-identical replay for whatever the scheduler does.
              Only the concurrency layer itself (sharded_kernel,
              parallel, and the check/logging plumbing they rely on)
              may use these types.

Findings print as file:line: [rule] message, and the exit status is
1 when there are any -- suitable both for CI and as a ctest entry.
"""

import argparse
import re
import sys
from pathlib import Path

SOURCE_GLOBS = ("*.cc", "*.hh")

# Headers on the per-event hot path: scheduling one event must not
# touch these abstractions' heap-allocating types.
EVENT_PATH_HEADERS = (
    "src/common/event_queue.hh",
    "src/common/inplace_function.hh",
    "src/common/sharded_kernel.hh",
    "src/dram/controller.hh",
    "src/nvram/ait.hh",
    "src/nvram/dimm.hh",
    "src/nvram/imc.hh",
    "src/nvram/lsq.hh",
    "src/nvram/media.hh",
    "src/nvram/rmw_buffer.hh",
    "src/nvram/wear_leveler.hh",
)

WALLCLOCK_PATTERNS = (
    (re.compile(r"std::chrono"), "std::chrono wall-clock time"),
    (re.compile(r"\b\w+_clock::now\s*\("), "wall-clock now()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "time()"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
)

ALLOW_RE = re.compile(r"simlint-allow")

# Files allowed to hold TraceRecorder state by value / by ownership:
# the recorder's own definition and its single owner.
TRACE_OWNER_FILES = (
    "src/common/trace_event.hh",
    "src/common/trace_event.cc",
    "src/nvram/vans_system.hh",
    "src/nvram/vans_system.cc",
)
# A by-value TraceRecorder member/local: `TraceRecorder name` not
# followed by `*` or `&` (pointer/reference declarations stay legal
# everywhere).
TRACE_BYVALUE_RE = re.compile(
    r"\bTraceRecorder\s+[A-Za-z_]\w*\s*[;={(]")
# Smart-pointer ownership of the recorder outside its owner files.
TRACE_SMARTPTR_RE = re.compile(
    r"\b(?:std::)?(?:unique_ptr|shared_ptr)\s*<\s*"
    r"(?:vans::)?(?:obs::)?TraceRecorder\s*>")

# The concurrency layer: the only files allowed to use threading
# primitives directly. Everything else shares state across shards
# solely via the kernel's outbox/barrier merge.
THREADING_OWNER_FILES = (
    "src/common/sharded_kernel.hh",
    "src/common/sharded_kernel.cc",
    "src/common/parallel.hh",
    "src/common/parallel.cc",
    "src/common/check.hh",
    "src/common/check.cc",
    "src/common/logging.cc",
)
THREADING_RE = re.compile(
    r"\bstd::(?:thread|jthread|mutex|recursive_mutex|shared_mutex|"
    r"timed_mutex|condition_variable(?:_any)?|atomic\w*|future|"
    r"promise|async|barrier|latch|semaphore)\b")

STATIC_RE = re.compile(r"^\s*static\s+(?P<rest>.*)$")
# Qualifiers and types that make a static safe to share.
STATIC_SAFE_RE = re.compile(
    r"^(const\b|constexpr\b|thread_local\b|std::atomic\b|"
    r"std::mutex\b|std::once_flag\b)"
)
# A declaration like `static Foo bar(...);` or `static Foo bar();`
# with the parens directly after an identifier is a member-function
# or factory declaration, not an object definition. The second form
# is a declaration whose default-argument list continues on the next
# line (`static Foo bar(std::uint64_t x =`).
FUNC_DECL_RE = re.compile(r"[A-Za-z_]\w*\s*\([^;]*\)\s*(const\s*)?;\s*$")
FUNC_DECL_CONT_RE = re.compile(r"[A-Za-z_]\w*\s*\([^)]*=\s*$")


def strip_comments(line, in_block):
    """Remove comment text; returns (code, still_in_block)."""
    out = []
    i = 0
    while i < len(line):
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block = False
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block = True
            i += 2
            continue
        out.append(line[i])
        i += 1
    return "".join(out), in_block


def lint_file(path, rel, findings):
    try:
        text = path.read_text(errors="replace")
    except OSError as e:
        findings.append((rel, 0, "io", str(e)))
        return

    lines = text.splitlines()
    in_block = False
    allow_next = False
    rel_posix = str(rel).replace("\\", "/")
    is_event_header = rel_posix in EVENT_PATH_HEADERS
    is_trace_owner = rel_posix in TRACE_OWNER_FILES
    is_threading_owner = rel_posix in THREADING_OWNER_FILES

    for lineno, raw in enumerate(lines, 1):
        allowed = allow_next or ALLOW_RE.search(raw)
        # An allow comment on its own line covers the next line too.
        allow_next = bool(ALLOW_RE.search(raw))

        code, in_block = strip_comments(raw, in_block)
        if not code.strip():
            continue

        if not allowed:
            for pat, what in WALLCLOCK_PATTERNS:
                if pat.search(code):
                    findings.append(
                        (rel, lineno, "wallclock",
                         f"{what}: simulated time must come from the "
                         "EventQueue, randomness from a seeded Rng"))

        if is_event_header and "std::function" in code:
            findings.append(
                (rel, lineno, "stdfunction",
                 "std::function in an event-path header: use "
                 "InplaceCallback to keep scheduling allocation-free"))

        if not is_trace_owner and not allowed:
            if (TRACE_BYVALUE_RE.search(code)
                    or TRACE_SMARTPTR_RE.search(code)):
                findings.append(
                    (rel, lineno, "tracebyvalue",
                     "TraceRecorder held by value or by smart "
                     "pointer outside its owner "
                     "(nvram/vans_system.*): components must hold "
                     "only a raw `TraceRecorder *` cached at attach "
                     "time so the disabled path stays one branch"))

        if not is_threading_owner and not allowed:
            tm = THREADING_RE.search(code)
            if tm:
                findings.append(
                    (rel, lineno, "shardshared",
                     f"{tm.group(0)} outside the concurrency layer: "
                     "cross-shard state must flow through the sharded "
                     "kernel's outbox/barrier merge (or annotate with "
                     "simlint-allow explaining why this sharing is "
                     "deterministic)"))

        m = STATIC_RE.match(code)
        if m and not allowed:
            rest = m.group("rest").strip()
            if (STATIC_SAFE_RE.match(rest)
                    or FUNC_DECL_RE.search(rest)
                    or FUNC_DECL_CONT_RE.search(rest)
                    # Return type on its own line / pure declarators.
                    or not re.search(r"[;={]\s*$", rest)):
                continue
            findings.append(
                (rel, lineno, "mutablestatic",
                 "mutable static shared across parallelFor "
                 "simulations; guard it (atomic/mutex/const) or "
                 "annotate with a simlint-allow comment"))


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repository root (default: tools/..)")
    args = ap.parse_args(argv)

    root = Path(args.root) if args.root else \
        Path(__file__).resolve().parent.parent
    src = root / "src"
    if not src.is_dir():
        print(f"simlint: no src/ under {root}", file=sys.stderr)
        return 2

    findings = []
    files = sorted(p for g in SOURCE_GLOBS for p in src.rglob(g))
    for path in files:
        lint_file(path, path.relative_to(root), findings)

    for rel, lineno, rule, msg in findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    print(f"simlint: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
