"""simlint: simulator-specific static analysis for the VANS tree.

v2 grew the original five regex rules into a declaration-aware suite:
a small C++ lexer + class/member/method extractor (tuned to this
repo's clang-format-enforced style) feeds cross-file rules that check
snapshot completeness, metrics reachability, include-graph layering,
and hot-path allocation discipline, alongside the original per-line
determinism rules.

Entry point: ``python3 tools/simlint.py`` (thin wrapper) or
``python3 -m simlint.cli`` with tools/ on sys.path.
"""

__version__ = "2.0"
