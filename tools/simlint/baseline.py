"""Committed-baseline support: existing debt is visible but not
fatal; NEW findings always are.

A baseline entry keys on (rule, file, content-hash-of-line) rather
than the line number, so unrelated edits above a baselined finding do
not resurrect it, while any change to the offending line itself (or
fixing it) retires the entry. `--write-baseline` snapshots the
current findings; the file is committed, so new debt cannot land
silently -- it either fails CI or shows up in the diff of the
baseline file for a reviewer to reject.
"""

from __future__ import annotations

import hashlib
import json


def _finding_key(finding, code_line):
    h = hashlib.sha256()
    basis = "|".join((finding.rule,
                      finding.file.replace("\\", "/"),
                      (code_line or finding.message).strip()))
    h.update(basis.encode("utf-8"))
    return h.hexdigest()[:20]


def _code_line(files_by_rel, finding):
    sf = files_by_rel.get(finding.file)
    if sf and 1 <= finding.line <= len(sf.code_lines):
        return sf.code_lines[finding.line - 1]
    return None


def load(path):
    """Baseline file -> set of keys. Missing file = empty baseline."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        return set()
    return {e["key"] for e in doc.get("findings", [])}


def write(path, findings, files_by_rel):
    entries = [
        {
            "key": _finding_key(f, _code_line(files_by_rel, f)),
            "rule": f.rule,
            "file": f.file.replace("\\", "/"),
            "message": f.message,
        }
        for f in findings
    ]
    entries.sort(key=lambda e: (e["file"], e["rule"], e["key"]))
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"version": 1, "findings": entries}, f, indent=2)
        f.write("\n")


def split(findings, keys, files_by_rel):
    """(new, baselined) partition of ``findings`` against ``keys``."""
    new, old = [], []
    for f in findings:
        if _finding_key(f, _code_line(files_by_rel, f)) in keys:
            old.append(f)
        else:
            new.append(f)
    return new, old
