"""simlint command line: scan, report (text/SARIF), baseline.

Exit status: 0 clean (after baseline subtraction), 1 findings,
2 usage/environment error. Python >= 3.8.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import __version__, baseline, model, rules, sarif

SOURCE_GLOBS = ("*.cc", "*.hh")


def _parse_worker(args):
    path, rel = args
    return model.parse_file(path, rel)


def _parse_all(pairs, jobs):
    if jobs > 1 and len(pairs) > 1:
        try:
            import multiprocessing
            with multiprocessing.Pool(min(jobs, len(pairs))) as pool:
                return pool.map(_parse_worker, pairs, chunksize=4)
        except (ImportError, OSError):
            pass  # platforms without fork/semaphores: scan serially
    return [_parse_worker(p) for p in pairs]


def build_arg_parser():
    ap = argparse.ArgumentParser(
        prog="simlint",
        description="Simulator-specific static analysis for the "
                    "VANS tree (v%s)." % __version__)
    ap.add_argument("--root", default=None,
                    help="repository root (default: tools/..)")
    ap.add_argument("--rules", default=None, metavar="R1,R2",
                    help="comma-separated rules to run "
                         "(default: all)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    ap.add_argument("--sarif", default=None, metavar="FILE",
                    help="also write findings as SARIF 2.1.0")
    ap.add_argument("--baseline", default=None, metavar="FILE",
                    help="suppress findings recorded in this "
                         "committed baseline")
    ap.add_argument("--write-baseline", default=None, metavar="FILE",
                    help="record current findings as the new "
                         "baseline and exit 0")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="parallel file-parsing processes "
                         "(default 1)")
    return ap


def main(argv=None):
    args = build_arg_parser().parse_args(argv)

    if args.list_rules:
        for name in sorted(rules.ALL_RULES):
            print("%-14s %s" % (name, rules.ALL_RULES[name][1]))
        return 0

    root = Path(args.root).resolve() if args.root else \
        Path(__file__).resolve().parent.parent.parent
    src = root / "src"
    if not src.is_dir():
        print("simlint: no src/ under %s" % root, file=sys.stderr)
        return 2

    rule_names = None
    if args.rules is not None:
        rule_names = {r.strip() for r in args.rules.split(",")
                      if r.strip()}
        unknown = rule_names - set(rules.ALL_RULES)
        if unknown:
            print("simlint: unknown rule(s): %s (try --list-rules)"
                  % ", ".join(sorted(unknown)), file=sys.stderr)
            return 2

    pairs = sorted(
        (str(p), str(p.relative_to(root)).replace("\\", "/"))
        for g in SOURCE_GLOBS for p in src.rglob(g))
    files = _parse_all(pairs, max(1, args.jobs))
    files_by_rel = {sf.rel: sf for sf in files}

    findings = rules.run_rules(files, rule_names)

    if args.write_baseline:
        baseline.write(args.write_baseline, findings, files_by_rel)
        print("simlint: wrote %d finding(s) to baseline %s"
              % (len(findings), args.write_baseline))
        return 0

    baselined = []
    if args.baseline:
        keys = baseline.load(args.baseline)
        findings, baselined = baseline.split(findings, keys,
                                             files_by_rel)

    for f in findings:
        print("%s:%d: [%s] %s" % (f.file, f.line, f.rule, f.message))

    if args.sarif:
        sarif.write_sarif(args.sarif, findings)

    tail = ""
    if baselined:
        tail = ", %d baselined (pre-existing debt)" % len(baselined)
    print("simlint: %d files, %d finding(s)%s"
          % (len(files), len(findings), tail))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
