#ifndef FIXTURE_COMMON_FLAGS_HH
#define FIXTURE_COMMON_FLAGS_HH

namespace vans
{

struct Flags
{
    // simlint-transient
    bool scratch = false;
};

} // namespace vans

#endif
