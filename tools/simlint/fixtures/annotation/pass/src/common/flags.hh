#ifndef FIXTURE_COMMON_FLAGS_HH
#define FIXTURE_COMMON_FLAGS_HH

namespace vans
{

struct Flags
{
    // simlint-transient(scratch: cleared at the start of every
    // window and never read across one)
    bool scratch = false;
};

} // namespace vans

#endif
