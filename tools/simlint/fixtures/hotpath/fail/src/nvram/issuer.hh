#ifndef FIXTURE_NVRAM_ISSUER_HH
#define FIXTURE_NVRAM_ISSUER_HH

#include <vector>

namespace vans::nvram
{

// simlint-hot
class Issuer
{
  public:
    void kick(unsigned n)
    {
        std::vector<unsigned> ready;
        for (unsigned i = 0; i < n; ++i)
            ready.push_back(i);
        issued += ready.size();
    }

  private:
    unsigned long long issued = 0;
};

} // namespace vans::nvram

#endif
