#ifndef FIXTURE_NVRAM_ISSUER_HH
#define FIXTURE_NVRAM_ISSUER_HH

#include <vector>

namespace vans::nvram
{

// simlint-hot
class Issuer
{
  public:
    void kick(unsigned n)
    {
        // Reuses the hoisted buffer's capacity: no per-event
        // allocation once the high-water mark is reached.
        ready.clear();
        for (unsigned i = 0; i < n; ++i)
            ready.push_back(i);
        issued += ready.size();
    }

  private:
    std::vector<unsigned> ready;
    unsigned long long issued = 0;
};

} // namespace vans::nvram

#endif
