#ifndef FIXTURE_COMMON_HELPER_HH
#define FIXTURE_COMMON_HELPER_HH

#include "nvram/device.hh"

namespace vans
{

inline unsigned
channelCount()
{
    return 1;
}

} // namespace vans

#endif
