#ifndef FIXTURE_NVRAM_DEVICE_HH
#define FIXTURE_NVRAM_DEVICE_HH

namespace vans::nvram
{

struct Device
{
    unsigned channels = 1;
};

} // namespace vans::nvram

#endif
