#ifndef FIXTURE_COMMON_TYPES_HH
#define FIXTURE_COMMON_TYPES_HH

namespace vans
{

using Tick = unsigned long long;

} // namespace vans

#endif
