#ifndef FIXTURE_DRAM_BUFFER_HH
#define FIXTURE_DRAM_BUFFER_HH

#include "common/types.hh"

namespace vans::dram
{

struct Buffer
{
    Tick readyAt = 0;
};

} // namespace vans::dram

#endif
