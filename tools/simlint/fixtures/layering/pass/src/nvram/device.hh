#ifndef FIXTURE_NVRAM_DEVICE_HH
#define FIXTURE_NVRAM_DEVICE_HH

// Downward to common and the sanctioned nvram -> dram lateral edge
// (the AIT buffer is on-DIMM DRAM).
#include "common/types.hh"
#include "dram/buffer.hh"

namespace vans::nvram
{

struct Device
{
    Tick nextFree = 0;
    dram::Buffer ait;
};

} // namespace vans::nvram

#endif
