namespace vans
{

unsigned long long
nextWorldId()
{
    static unsigned long long counter = 0;
    return ++counter;
}

} // namespace vans
