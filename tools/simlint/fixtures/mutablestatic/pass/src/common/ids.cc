namespace vans
{

unsigned long long
worldIdLimit()
{
    static const unsigned long long limit = 1u << 20;
    return limit;
}

} // namespace vans
