#ifndef FIXTURE_NVRAM_ISSUER_HH
#define FIXTURE_NVRAM_ISSUER_HH

#include <memory>

namespace vans
{
struct Request;
} // namespace vans

namespace vans::nvram
{

class Issuer
{
  public:
    void
    track(std::uint64_t handle_bits)
    {
        inflight_bits = handle_bits;
    }

  private:
    std::shared_ptr<Request> inflight;
    std::uint64_t inflight_bits = 0;
};

} // namespace vans::nvram

#endif
