#ifndef FIXTURE_COMMON_REQUEST_POOL_HH
#define FIXTURE_COMMON_REQUEST_POOL_HH

#include <memory>

namespace vans
{

struct Request;

// The pool implementation files are the one sanctioned home for
// request storage details -- the rule exempts them by path.
class RequestPool
{
  public:
    using LegacyPtr = std::shared_ptr<Request>;

  private:
    std::shared_ptr<Request> scratch;
};

} // namespace vans

#endif
