#ifndef FIXTURE_NVRAM_ISSUER_HH
#define FIXTURE_NVRAM_ISSUER_HH

#include <cstdint>

namespace vans::nvram
{

class Issuer
{
  public:
    void
    track(std::uint64_t handle_bits)
    {
        inflight = handle_bits;
    }

  private:
    std::uint64_t inflight = 0; ///< RequestHandle::bits.
};

} // namespace vans::nvram

#endif
