#ifndef FIXTURE_NVRAM_ARBITER_HH
#define FIXTURE_NVRAM_ARBITER_HH

#include <mutex>

namespace vans::nvram
{

class Arbiter
{
  private:
    std::mutex grantLock;
};

} // namespace vans::nvram

#endif
