#ifndef FIXTURE_COMMON_PARALLEL_HH
#define FIXTURE_COMMON_PARALLEL_HH

#include <mutex>

namespace vans
{

// parallel.hh is part of the concurrency layer (the rule's owner
// file list), so threading primitives are legal here.
class Gate
{
  private:
    std::mutex m;
};

} // namespace vans

#endif
