#ifndef FIXTURE_NVRAM_COUNTER_HH
#define FIXTURE_NVRAM_COUNTER_HH

namespace vans::nvram
{

/** Direct-mapped cache tag store (Memory-mode front-end shape). */
class Counter
{
  public:
    void snapshotTo(snapshot::StateSink &sink) const
    {
        sink.u64(tags.size());
        for (unsigned long long t : tags)
            sink.u64(t);
    }

    void restoreFrom(snapshot::StateSource &src)
    {
        tags.resize(src.u64());
        for (auto &t : tags)
            t = src.u64();
    }

  private:
    std::vector<unsigned long long> tags;
    // The dirty-bit array that snapshotTo and restoreFrom both
    // forget: a forked world restores every cached line as clean,
    // drops the victim writebacks, and silently diverges from the
    // warm prototype -- the exact bug class snapshotcover catches.
    std::vector<bool> dirtyBits;
};

} // namespace vans::nvram

#endif
