#ifndef FIXTURE_NVRAM_COUNTER_HH
#define FIXTURE_NVRAM_COUNTER_HH

namespace vans::nvram
{

class Counter
{
  public:
    void snapshotTo(snapshot::StateSink &sink) const
    {
        sink.u64(ticks);
        sink.u64(events);
    }

    void restoreFrom(snapshot::StateSource &src)
    {
        ticks = src.u64();
        events = src.u64();
    }

  private:
    unsigned long long ticks = 0;
    unsigned long long events = 0;
    // Persist-domain state: write-combining fill that snapshotTo and
    // restoreFrom both forget -- ADR durability silently lost across
    // a snapshot, the exact bug class snapshotcover exists to catch.
    unsigned long long wcFill = 0;
};

} // namespace vans::nvram

#endif
