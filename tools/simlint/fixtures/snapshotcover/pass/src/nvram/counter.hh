#ifndef FIXTURE_NVRAM_COUNTER_HH
#define FIXTURE_NVRAM_COUNTER_HH

namespace vans::nvram
{

class Counter
{
  public:
    void snapshotTo(snapshot::StateSink &sink) const
    {
        sink.u64(ticks);
        sink.u64(events);
        sink.u64(wcFill);
        sink.u64(adrVersions.size());
    }

    void restoreFrom(snapshot::StateSource &src)
    {
        ticks = src.u64();
        events = src.u64();
        wcFill = src.u64();
        adrVersions.clear();
    }

  private:
    unsigned long long ticks = 0;
    unsigned long long events = 0;
    // simlint-transient(scratch: recomputed by the first event after
    // a restore, never read before then)
    unsigned long long lastDelta = 0;

    // The persist-domain shape from the ADR model: durable state
    // (the line->version map and the write-combining fill) is
    // serialized; an in-flight fence cannot exist at quiescence, the
    // snapshot precondition, so its bookkeeping is transient.
    std::unordered_map<unsigned long long, unsigned long long>
        adrVersions;
    unsigned long long wcFill = 0;
    struct PendingSfence
    {
        // simlint-transient(dies with its pendingSfences entry
        // before any snapshot)
        unsigned long long id = 0;
        // simlint-transient(same: earliest completion of an entry
        // that cannot outlive quiescence)
        unsigned long long readyAt = 0;
    };
    // simlint-transient(a pending fence implies outstanding writes,
    // which the snapshot precondition excludes)
    PendingSfence pendingSfence;
};

} // namespace vans::nvram

#endif
