#ifndef FIXTURE_NVRAM_COUNTER_HH
#define FIXTURE_NVRAM_COUNTER_HH

namespace vans::nvram
{

class Counter
{
  public:
    void snapshotTo(snapshot::StateSink &sink) const
    {
        sink.u64(ticks);
        sink.u64(events);
    }

    void restoreFrom(snapshot::StateSource &src)
    {
        ticks = src.u64();
        events = src.u64();
    }

  private:
    unsigned long long ticks = 0;
    unsigned long long events = 0;
    // simlint-transient(scratch: recomputed by the first event after
    // a restore, never read before then)
    unsigned long long lastDelta = 0;
};

} // namespace vans::nvram

#endif
