#ifndef FIXTURE_NVRAM_COUNTER_HH
#define FIXTURE_NVRAM_COUNTER_HH

namespace vans::nvram
{

/** Direct-mapped cache tag store (Memory-mode front-end shape). */
class Counter
{
  public:
    void snapshotTo(snapshot::StateSink &sink) const
    {
        sink.u64(tags.size());
        for (unsigned long long i = 0; i < tags.size(); ++i) {
            sink.u64(tags[i]);
            sink.boolean(dirtyBits[i]);
        }
    }

    void restoreFrom(snapshot::StateSource &src)
    {
        tags.resize(src.u64());
        dirtyBits.resize(tags.size());
        for (unsigned long long i = 0; i < tags.size(); ++i) {
            tags[i] = src.u64();
            dirtyBits[i] = src.boolean();
        }
    }

  private:
    // The architectural cache image: tag store plus the dirty bits
    // that decide which victims must write back to the media. Both
    // are serialized together -- a restored world owes the DIMM
    // exactly the writebacks the prototype owed.
    std::vector<unsigned long long> tags;
    std::vector<bool> dirtyBits;

    // MSHR bookkeeping cannot outlive quiescence (the snapshot
    // precondition drains every in-flight fill), so it is transient
    // by design rather than serialized.
    struct PendingFill
    {
        // simlint-transient(dies with its fetching entry before any
        // snapshot)
        unsigned long long line = 0;
        // simlint-transient(same: issue tick of a fill that cannot
        // outlive quiescence)
        unsigned long long issuedAt = 0;
    };
    // simlint-transient(an in-flight fill implies a non-quiescent
    // cache, which the snapshot precondition excludes)
    PendingFill pendingFill;
};

} // namespace vans::nvram

#endif
