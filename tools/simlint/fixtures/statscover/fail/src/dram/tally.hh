#ifndef FIXTURE_DRAM_TALLY_HH
#define FIXTURE_DRAM_TALLY_HH

namespace vans::dram
{

/** Cache-front-end accounting (Memory-mode DRAM cache shape). */
class Tally
{
  public:
    void statsInto(StatGroup &stats) const
    {
        stats.scalar("fills").set(fills.value());
        stats.scalar("dirty_evicts").set(dirtyEvicts.value());
    }

  private:
    StatScalar fills;
    StatScalar dirtyEvicts;
    // The hit-ratio average never reaches a StatGroup: the one
    // number a capacity-planning run needs from a DRAM cache is
    // sampled on every access and then reported nowhere.
    StatAverage hitRatio;
};

} // namespace vans::dram

#endif
