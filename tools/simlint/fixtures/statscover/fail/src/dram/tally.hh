#ifndef FIXTURE_DRAM_TALLY_HH
#define FIXTURE_DRAM_TALLY_HH

namespace vans::dram
{

class Tally
{
  private:
    StatScalar rowHits;
};

} // namespace vans::dram

#endif
