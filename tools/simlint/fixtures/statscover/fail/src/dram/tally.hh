#ifndef FIXTURE_DRAM_TALLY_HH
#define FIXTURE_DRAM_TALLY_HH

namespace vans::dram
{

class Tally
{
  public:
    void statsInto(StatGroup &stats) const
    {
        stats.scalar("row_hits").set(rowHits.value());
    }

  private:
    StatScalar rowHits;
    // A persistence-op counter (sfences accepted into ADR) that
    // never reaches a StatGroup: the run reports nothing about the
    // fence traffic it simulated.
    StatScalar sfences;
};

} // namespace vans::dram

#endif
