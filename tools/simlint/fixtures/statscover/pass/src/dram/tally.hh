#ifndef FIXTURE_DRAM_TALLY_HH
#define FIXTURE_DRAM_TALLY_HH

namespace vans::dram
{

/** Cache-front-end accounting (Memory-mode DRAM cache shape). */
class Tally
{
  public:
    void statsInto(StatGroup &stats) const
    {
        stats.scalar("fills").set(fills.value());
        stats.scalar("dirty_evicts").set(dirtyEvicts.value());
        stats.average("hit_ratio").merge(hitRatio);
    }

  private:
    // The counters every cache front-end must report: fill and
    // victim-writeback traffic plus the hit ratio that sizes the
    // near-memory tier.
    StatScalar fills;
    StatScalar dirtyEvicts;
    StatAverage hitRatio;
};

} // namespace vans::dram

#endif
