#ifndef FIXTURE_DRAM_TALLY_HH
#define FIXTURE_DRAM_TALLY_HH

namespace vans::dram
{

class Tally
{
  public:
    void statsInto(StatGroup &stats) const
    {
        stats.scalar("row_hits").set(rowHits.value());
    }

  private:
    StatScalar rowHits;
};

} // namespace vans::dram

#endif
