#ifndef FIXTURE_DRAM_TALLY_HH
#define FIXTURE_DRAM_TALLY_HH

namespace vans::dram
{

class Tally
{
  public:
    void statsInto(StatGroup &stats) const
    {
        stats.scalar("row_hits").set(rowHits.value());
        stats.scalar("sfences").set(sfences.value());
        stats.scalar("wc_partial_drains").set(wcPartialDrains.value());
    }

  private:
    StatScalar rowHits;
    // The persistence-op counters every ADR-capable component must
    // report: fence acceptances and Empirical-Guide partial
    // write-combining drains.
    StatScalar sfences;
    StatScalar wcPartialDrains;
};

} // namespace vans::dram

#endif
