#ifndef FIXTURE_DRAM_PROBE_HH
#define FIXTURE_DRAM_PROBE_HH

namespace vans::dram
{

class Probe
{
  private:
    obs::TraceRecorder recorder;
};

} // namespace vans::dram

#endif
