#ifndef FIXTURE_DRAM_PROBE_HH
#define FIXTURE_DRAM_PROBE_HH

namespace vans::dram
{

class Probe
{
  private:
    // Raw pointer cached at attach time: the disabled path is one
    // nullptr branch, and ownership stays with the system facade.
    obs::TraceRecorder *recorder = nullptr;
};

} // namespace vans::dram

#endif
