#include <sys/time.h>

namespace vans
{

unsigned long long
sampleNow()
{
    timeval tv;
    gettimeofday(&tv, nullptr);
    return static_cast<unsigned long long>(tv.tv_sec);
}

} // namespace vans
