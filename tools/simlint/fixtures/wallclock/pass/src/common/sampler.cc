namespace vans
{

// Simulated time is an input: the EventQueue clock is the only
// source of "now" a model component may observe.
unsigned long long
sampleNow(unsigned long long event_queue_tick)
{
    return event_queue_tick;
}

} // namespace vans
