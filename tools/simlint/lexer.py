"""Lexical pass: comment/string stripping plus annotation capture.

The declaration model and every rule operate on *code lines*: the
source with comments and string/char literal contents replaced by
spaces (so a member name inside a log string never counts as a
reference) and preprocessor directives blanked (macro bodies contain
braces that would desynchronize the block parser).

Comments are not discarded: they carry the annotation grammar --

    simlint-allow(rule: reason)   suppress `rule` here; reason required
    simlint-allow(r1, r2: reason) suppress several rules
    simlint-allow: reason         suppress any rule on this line (legacy)
    simlint-transient(reason)     member is deliberately not snapshotted
    simlint-hot                   class/function is on the event hot path

An annotation on a line with code applies to that line (and, for
declaration rules, to the declaration spanning it). An annotation on
a pure comment line applies to the next code line. A malformed
annotation (missing reason) is itself a finding (rule `annotation`).
"""

from __future__ import annotations

import re


class Annotation:
    """One parsed simlint-* annotation."""

    __slots__ = ("kind", "rules", "reason", "line", "target_line",
                 "error")

    def __init__(self, kind, rules, reason, line, error=None):
        self.kind = kind          # "allow" | "transient" | "hot"
        self.rules = rules        # frozenset of rule names, or None=any
        self.reason = reason      # str or None
        self.line = line          # 1-based line of the comment
        self.target_line = line   # code line it applies to (fixed up)
        self.error = error        # message when malformed

    def covers(self, rule):
        return self.kind == "allow" and (self.rules is None
                                         or rule in self.rules)


ANNOT_RE = re.compile(
    r"simlint-(?P<kind>allow|transient|hot)\b"
    r"(?:\s*\((?P<args>(?:[^()]|\([^()]*\))*)\))?"
    r"(?P<colon>\s*:)?\s*(?P<tail>[^*]*)")


def _parse_annotation(kind, args, colon, tail, line):
    if kind == "hot":
        return Annotation("hot", None, None, line)
    if kind == "transient":
        reason = (args or "").strip()
        if not reason:
            return Annotation("transient", None, None, line,
                              error="simlint-transient needs a reason: "
                                    "simlint-transient(why this member "
                                    "is deliberately not snapshotted)")
        return Annotation("transient", None, reason, line)
    # allow
    if args:
        if ":" in args:
            rules_part, reason = args.split(":", 1)
            rules = frozenset(
                r.strip() for r in rules_part.split(",") if r.strip())
            reason = reason.strip()
            if rules and reason:
                return Annotation("allow", rules, reason, line)
        return Annotation(
            "allow", None, None, line,
            error="simlint-allow needs '(rule: reason)' -- got "
                  f"'({args})'")
    if colon and tail.strip():
        return Annotation("allow", None, tail.strip(), line)
    return Annotation(
        "allow", None, None, line,
        error="simlint-allow without a reason: write "
              "simlint-allow(rule: reason)")


def scan(text):
    """Split ``text`` into code and annotations.

    Returns (code_lines, annotations): code_lines is a list of strings
    (1-based access via index+1) with comments, literal contents and
    preprocessor directives blanked; annotations is a list of
    Annotation with target_line resolved to the code line each one
    governs.
    """
    raw_lines = text.splitlines()
    code_lines = []
    comment_by_line = {}

    in_block = False
    in_pp = False  # inside a \-continued preprocessor directive
    for lineno, raw in enumerate(raw_lines, 1):
        code = []
        comment = []
        i = 0
        n = len(raw)
        if in_pp or (not in_block and raw.lstrip().startswith("#")):
            in_pp = raw.rstrip().endswith("\\")
            code_lines.append("")
            continue
        while i < n:
            c = raw[i]
            if in_block:
                end = raw.find("*/", i)
                if end < 0:
                    comment.append(raw[i:])
                    i = n
                else:
                    comment.append(raw[i:end])
                    code.append(" " * (end + 2 - i))
                    i = end + 2
                    in_block = False
                continue
            if raw.startswith("//", i):
                comment.append(raw[i + 2:])
                i = n
                continue
            if raw.startswith("/*", i):
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                code.append(quote)
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        code.append("  ")
                        i += 2
                        continue
                    if raw[i] == quote:
                        code.append(quote)
                        i += 1
                        break
                    code.append(" ")
                    i += 1
                continue
            code.append(c)
            i += 1
        code_lines.append("".join(code).rstrip())
        if comment:
            comment_by_line[lineno] = " ".join(comment)

    # Group runs of consecutive *pure* comment lines into one block
    # so an annotation (and its reason) may wrap across lines. A
    # trailing comment on a code line is always its own block.
    blocks = []  # (first_line, [line numbers], joined text)
    run = []
    for lineno in sorted(comment_by_line):
        pure = not code_lines[lineno - 1].strip()
        if pure and run and run[-1] == lineno - 1 \
                and not code_lines[run[-1] - 1].strip():
            run.append(lineno)
        else:
            if run:
                blocks.append(run)
            run = [lineno]
    if run:
        blocks.append(run)

    annotations = []
    for run in blocks:
        joined = "\n".join(comment_by_line[ln] for ln in run)
        for m in ANNOT_RE.finditer(joined):
            at = run[joined.count("\n", 0, m.start())]
            annotations.append(_parse_annotation(
                m.group("kind"), m.group("args"),
                m.group("colon"), m.group("tail"), at))

    # Resolve targets: a pure-comment line's annotation governs the
    # next line that has code.
    def has_code(ln):
        return (1 <= ln <= len(code_lines)
                and bool(code_lines[ln - 1].strip()))

    for a in annotations:
        t = a.line
        while t <= len(code_lines) and not has_code(t):
            t += 1
        a.target_line = t
    return code_lines, annotations


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def includes(text):
    """(line, path) for every quoted #include in ``text``."""
    out = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        m = INCLUDE_RE.match(raw)
        if m:
            out.append((lineno, m.group(1)))
    return out
