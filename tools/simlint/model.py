"""Declaration model: classes, members, method bodies, includes.

This is not a C++ parser; it is a brace-structure scanner tuned to the
style this repo enforces with clang-format and -Werror: one
declaration per statement, no macros that open braces outside
preprocessor lines (those are blanked by the lexer), namespaces and
classes opened with the brace on the same or following line.
Everything a rule consumes is plain data, so parsed files can cross a
multiprocessing boundary for --jobs.
"""

from __future__ import annotations

import re

from . import lexer

RECORD_RE = re.compile(
    r"\b(class|struct)\s+"
    r"(?:alignas\s*\([^)]*\)\s*)?"
    r"(?:[A-Z][A-Z0-9]*_[A-Z0-9_]*\s*(?:\([^)]*\)\s*)?)?"  # attr macro
    r"(?P<name>[A-Za-z_]\w*)\s*"
    r"(?:final\s*)?(?::[^;{]*)?$")

NAMESPACE_RE = re.compile(r"^\s*(inline\s+)?namespace\b")

METHOD_NAME_RE = re.compile(
    r"(?P<quals>(?:[A-Za-z_]\w*\s*(?:<[^<>]*>)?\s*::\s*)*)"
    r"(?P<name>~?[A-Za-z_]\w*|operator\s*[^\s(]+)\s*\($")

ACCESS_RE = re.compile(r"^(?:\s*(?:public|private|protected)\s*:)+")

SKIP_STMT_RE = re.compile(
    r"^\s*(using\b|typedef\b|friend\b|template\b|static_assert\b|"
    r"enum\b|VANS_\w+\s*\(|[A-Z][A-Z0-9_]*\s*\(.*\)\s*$)")

FWD_DECL_RE = re.compile(r"^\s*(class|struct)\s+[A-Za-z_]\w*\s*$")


class Member:
    __slots__ = ("name", "decl", "line", "end_line", "is_static",
                 "is_ref", "is_ptr")

    def __init__(self, name, decl, line, end_line, is_static,
                 is_ref, is_ptr):
        self.name = name
        self.decl = decl          # full declaration text
        self.line = line
        self.end_line = end_line
        self.is_static = is_static
        self.is_ref = is_ref
        self.is_ptr = is_ptr


class Method:
    __slots__ = ("name", "owner", "sig", "line", "end_line",
                 "body_lines")

    def __init__(self, name, owner, sig, line, end_line, body_lines):
        self.name = name
        self.owner = owner        # "Imc" / "Imc::Channel" / "" (free)
        self.sig = sig
        self.line = line
        self.end_line = end_line
        # [(lineno, code)] -- None for a pure declaration.
        self.body_lines = body_lines

    def body_text(self):
        return "\n".join(c for _, c in self.body_lines) \
            if self.body_lines else ""


class Record:
    __slots__ = ("name", "path", "kind", "line", "end_line",
                 "members", "methods", "nested")

    def __init__(self, name, path, kind, line):
        self.name = name
        self.path = path          # "Imc" or "Imc::Channel"
        self.kind = kind          # "class" | "struct"
        self.line = line
        self.end_line = line
        self.members = []
        self.methods = []         # inline definitions AND declarations
        self.nested = []          # child Record paths


class SourceFile:
    __slots__ = ("rel", "code_lines", "annotations", "includes",
                 "records", "free_methods")

    def __init__(self, rel):
        self.rel = rel
        self.code_lines = []
        self.annotations = []
        self.includes = []
        self.records = {}         # path -> Record
        self.free_methods = []    # out-of-line definitions


def _split_declarators(text):
    """Split a member statement on top-level commas."""
    parts = []
    depth = 0
    cur = []
    for c in text:
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth = max(0, depth - 1)
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


def _member_names(stmt):
    """[(name, is_ref, is_ptr)] declared by a member statement."""
    # Drop everything after the first top-level '=' (initializer)
    # and any trailing brace-init.
    depth = 0
    cut = len(stmt)
    for i, c in enumerate(stmt):
        if c in "<([{":
            depth += 1
        elif c in ">)]}":
            depth -= 1
        elif c == "=" and depth == 0:
            cut = i
            break
    stmt = stmt[:cut]
    stmt = re.sub(r"\{[^{}]*\}\s*$", "", stmt).strip()
    if not stmt:
        return []
    out = []
    for chunk in _split_declarators(stmt):
        chunk = re.sub(r"\{[^{}]*\}\s*$", "", chunk)
        chunk = re.sub(r"\[[^\]]*\]\s*$", "", chunk).strip()
        m = re.search(r"([&*]\s*)?([A-Za-z_]\w*)\s*$", chunk)
        if not m:
            continue
        name = m.group(2)
        if name in ("const", "override", "final", "noexcept",
                    "default", "delete", "struct", "class"):
            continue
        before = chunk[:m.start()].rstrip()
        is_ref = bool(m.group(1) and "&" in m.group(1)) or \
            before.endswith("&")
        is_ptr = bool(m.group(1) and "*" in m.group(1)) or \
            before.endswith("*")
        out.append((name, is_ref, is_ptr))
    return out


class _Ctx:
    __slots__ = ("kind", "record", "method")

    def __init__(self, kind, record=None, method=None):
        self.kind = kind     # namespace|record|function|block|init
        self.record = record
        self.method = method  # set on the "function" ctx only


class Parser:
    def __init__(self, rel, text):
        self.rel = rel
        self.sf = SourceFile(rel)
        self.sf.code_lines, self.sf.annotations = lexer.scan(text)
        self.sf.includes = lexer.includes(text)
        self.stack = []           # list[_Ctx]
        self.buf = []             # [(lineno, fragment)]
        self.record_stack = []    # list[Record]
        self.func_stack = []      # list[Method] currently being read

    # -- statement buffer helpers ---------------------------------

    def _buf_text(self):
        return re.sub(r"\s+", " ",
                      " ".join(f for _, f in self.buf)).strip()

    def _buf_start(self):
        # First buffered line with content other than an access
        # label, so `private:` on its own line does not become the
        # declaration line of whatever follows it.
        for ln, frag in self.buf:
            if ACCESS_RE.sub("", frag).strip():
                return ln
        return self.buf[0][0] if self.buf else 1

    # -- structural events ----------------------------------------

    def _cur(self):
        return self.stack[-1] if self.stack else None

    def _in_function(self):
        return bool(self.func_stack)

    def _body_append(self, lineno, fragment):
        self.func_stack[-1].body_lines.append((lineno, fragment))

    def _record_path(self):
        return "::".join(r.name for r in self.record_stack)

    def _open_brace(self, lineno):
        if self._in_function():
            self.stack.append(_Ctx("block"))
            return
        cur = self._cur()
        if cur and cur.kind == "init":
            self.stack.append(_Ctx("init"))
            self.buf.append((lineno, "{"))
            return
        stmt = ACCESS_RE.sub("", self._buf_text()).strip()
        start = self._buf_start()
        m = RECORD_RE.search(stmt)
        if m and ";" not in stmt and "enum" not in stmt.split():
            name = m.group("name")
            parent = self.record_stack[-1] if self.record_stack \
                else None
            path = (parent.path + "::" + name) if parent else name
            rec = Record(name, path, m.group(1), start)
            self.sf.records[path] = rec
            if parent:
                parent.nested.append(path)
            self.record_stack.append(rec)
            self.stack.append(_Ctx("record", record=rec))
            self.buf = []
            return
        if NAMESPACE_RE.match(stmt) or stmt.startswith("extern"):
            self.stack.append(_Ctx("namespace"))
            self.buf = []
            return
        if "(" in stmt:
            meth = self._make_method(stmt, start, body=True)
            self.stack.append(_Ctx("function", method=meth))
            self.func_stack.append(meth)
            self.buf = []
            return
        if cur and cur.kind == "record" and stmt:
            # Member brace-or-equal initializer: keep accumulating.
            self.stack.append(_Ctx("init"))
            self.buf.append((lineno, "{"))
            return
        self.stack.append(_Ctx("block"))
        self.buf = []

    def _close_brace(self, lineno):
        if not self.stack:
            self.buf = []
            return
        ctx = self.stack.pop()
        if ctx.kind == "record":
            rec = self.record_stack.pop()
            rec.end_line = lineno
            self.buf = []
        elif ctx.kind == "function":
            meth = self.func_stack.pop()
            meth.end_line = lineno
            self._bind_method(meth)
            self.buf = []
        elif ctx.kind == "init":
            self.buf.append((lineno, "}"))
        # plain block inside a function/namespace: nothing to close

    def _semicolon(self, lineno):
        cur = self._cur()
        if cur and cur.kind == "block":
            return
        stmt = ACCESS_RE.sub("", self._buf_text()).strip()
        start = self._buf_start()
        self.buf = []
        if not stmt:
            return
        if cur and cur.kind == "record":
            self._record_statement(cur.record, stmt, start, lineno)

    # -- declarations ---------------------------------------------

    def _make_method(self, stmt, start, body):
        # Signature is everything up to the first top-level '('.
        depth = 0
        paren = stmt.find("(")
        for i, c in enumerate(stmt):
            if c == "<":
                depth += 1
            elif c == ">":
                depth = max(0, depth - 1)
            elif c == "(" and depth == 0:
                paren = i
                break
        prefix = stmt[:paren + 1]
        m = METHOD_NAME_RE.search(prefix)
        if m:
            name = re.sub(r"\s+", "", m.group("name"))
            quals = re.sub(r"\s+|<[^<>]*>", "", m.group("quals"))
            owner = quals.rstrip(":")
        else:
            name = "<unparsed>"
            owner = ""
        if not owner:
            owner = self._record_path()
        return Method(name, owner, stmt, start, start,
                      [] if body else None)

    def _bind_method(self, meth):
        rec = self.record_stack[-1] if self.record_stack else None
        if rec is not None and meth.owner == rec.path:
            rec.methods.append(meth)
        else:
            self.sf.free_methods.append(meth)

    def _record_statement(self, rec, stmt, start, end):
        if SKIP_STMT_RE.match(stmt) or FWD_DECL_RE.match(stmt):
            return
        if "(" in stmt:
            meth = self._make_method(stmt, start, body=False)
            meth.end_line = end
            rec.methods.append(meth)
            return
        is_static = bool(
            re.match(r"^\s*(static|constexpr)\b", stmt))
        for name, is_ref, is_ptr in _member_names(stmt):
            rec.members.append(Member(name, stmt, start, end,
                                      is_static, is_ref, is_ptr))

    # -- main loop ------------------------------------------------

    def parse(self):
        for lineno, code in enumerate(self.sf.code_lines, 1):
            seg_start = 0
            for i, c in enumerate(code):
                if c == "{":
                    frag = code[seg_start:i]
                    if self._in_function():
                        self._body_append(lineno, frag)
                    else:
                        self.buf.append((lineno, frag))
                    self._open_brace(lineno)
                    seg_start = i + 1
                elif c == "}":
                    frag = code[seg_start:i]
                    if self._in_function():
                        self._body_append(lineno, frag)
                    else:
                        self.buf.append((lineno, frag))
                    self._close_brace(lineno)
                    seg_start = i + 1
                elif c == ";" and not self._in_function():
                    self.buf.append((lineno, code[seg_start:i]))
                    self._semicolon(lineno)
                    seg_start = i + 1
            tail = code[seg_start:]
            if self._in_function():
                self._body_append(lineno, tail)
            elif tail.strip():
                self.buf.append((lineno, tail))
        return self.sf


def parse_file(path, rel):
    """Parse one source file; IO errors yield an empty SourceFile."""
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError:
        return SourceFile(rel)
    return Parser(rel, text).parse()
