"""Rule implementations over the declaration model.

Per-line determinism rules (v1 heritage):

  wallclock      no wall-clock time / ambient randomness in model code
  mutablestatic  no unguarded mutable statics
  tracebyvalue   TraceRecorder held only via raw pointer outside owner
  shardshared    threading primitives only in the concurrency layer

Declaration-aware rules (v2):

  snapshotcover  every data member of a class defining snapshotTo +
                 restoreFrom must be referenced in BOTH bodies (so a
                 dead restore flags too), or carry
                 simlint-transient(reason). Members of nested structs
                 without their own snapshotTo are included -- exactly
                 the Imc::Channel::pendingArrivals bug class.
  statscover     every Stat* member must be reachable from the
                 MetricsRegistry walk: referenced in a
                 metricsInto/statsInto body or exposed through a
                 StatGroup& accessor of its (enclosing) class.
  layering       include-graph DAG: common <- {dram, nvram, cpu,
                 cache, trace, workloads} <- {lens, opt, baselines};
                 upward or unsanctioned lateral includes and cycles
                 are fatal.
  hotpath        no heap-allocating std types, new, or make_unique/
                 make_shared in code marked simlint-hot (constructors
                 and snapshot/stats/trace plumbing are automatically
                 cold).
  reqptr         no shared_ptr<Request> ownership outside the pool
                 implementation: requests live in the slab-backed
                 RequestPool and are addressed by generation-checked
                 RequestHandle values.
  annotation     malformed simlint annotations (a suppression without
                 a written reason is itself a finding).
"""

from __future__ import annotations

import re


class Finding:
    __slots__ = ("rule", "file", "line", "message")

    def __init__(self, rule, file, line, message):
        self.rule = rule
        self.file = file
        self.line = line
        self.message = message


# --------------------------------------------------------------- #
# Annotation index                                                 #
# --------------------------------------------------------------- #

class AnnotationIndex:
    """Per-file lookup of parsed simlint annotations."""

    def __init__(self, sf):
        self.allows = {}      # target_line -> [Annotation]
        self.transient = {}   # target_line -> Annotation
        self.hot = set()      # target_lines
        self.malformed = []
        for a in sf.annotations:
            if a.error:
                self.malformed.append(a)
            elif a.kind == "allow":
                self.allows.setdefault(a.target_line, []).append(a)
            elif a.kind == "transient":
                self.transient[a.target_line] = a
            elif a.kind == "hot":
                self.hot.add(a.target_line)

    def allowed(self, rule, line, end_line=None):
        for ln in range(line, (end_line or line) + 1):
            for a in self.allows.get(ln, ()):
                if a.covers(rule):
                    return True
        return False

    def is_transient(self, line, end_line=None):
        return any(ln in self.transient
                   for ln in range(line, (end_line or line) + 1))

    def is_hot(self, line):
        return line in self.hot


class Project:
    """All parsed files plus derived cross-file lookup tables."""

    def __init__(self, files):
        self.files = files
        self.annots = {sf.rel: AnnotationIndex(sf) for sf in files}
        # Class name (last path component) -> [(sf, Method)] bodies
        # of out-of-line definitions.
        self.bodies_by_class = {}
        for sf in files:
            for meth in sf.free_methods:
                if meth.body_lines is None or not meth.owner:
                    continue
                cls = meth.owner.split("::")[-1]
                self.bodies_by_class.setdefault(cls, []).append(
                    (sf, meth))

    def methods_of(self, sf, rec):
        """Every method body/decl of ``rec``: inline plus matching
        out-of-line definitions anywhere in the project."""
        out = [(sf, m) for m in rec.methods]
        out.extend(self.bodies_by_class.get(rec.name, ()))
        return out


# --------------------------------------------------------------- #
# Per-line rules                                                   #
# --------------------------------------------------------------- #

WALLCLOCK_PATTERNS = (
    (re.compile(r"std::chrono"), "std::chrono wall-clock time"),
    (re.compile(r"\b\w+_clock::now\s*\("), "wall-clock now()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "time()"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
)


def rule_wallclock(project):
    out = []
    for sf in project.files:
        ai = project.annots[sf.rel]
        for lineno, code in enumerate(sf.code_lines, 1):
            if not code.strip():
                continue
            for pat, what in WALLCLOCK_PATTERNS:
                if pat.search(code) and \
                        not ai.allowed("wallclock", lineno):
                    out.append(Finding(
                        "wallclock", sf.rel, lineno,
                        f"{what}: simulated time must come from the "
                        "EventQueue, randomness from a seeded Rng"))
    return out


STATIC_RE = re.compile(r"^\s*static\s+(?P<rest>.*)$")
STATIC_SAFE_RE = re.compile(
    r"^(const\b|constexpr\b|thread_local\b|std::atomic\b|"
    r"std::mutex\b|std::once_flag\b|Mutex\b|vans::Mutex\b)")
FUNC_DECL_RE = re.compile(
    r"[A-Za-z_]\w*\s*\([^;]*\)\s*(const\s*)?;?\s*$")
FUNC_DECL_CONT_RE = re.compile(r"[A-Za-z_]\w*\s*\([^)]*=\s*$")


def rule_mutablestatic(project):
    out = []
    for sf in project.files:
        ai = project.annots[sf.rel]
        for lineno, code in enumerate(sf.code_lines, 1):
            m = STATIC_RE.match(code)
            if not m or ai.allowed("mutablestatic", lineno):
                continue
            rest = m.group("rest").strip()
            if (STATIC_SAFE_RE.match(rest)
                    or FUNC_DECL_RE.search(rest)
                    or FUNC_DECL_CONT_RE.search(rest)
                    or not re.search(r"[;={]\s*$", rest)):
                continue
            out.append(Finding(
                "mutablestatic", sf.rel, lineno,
                "mutable static shared across parallelFor "
                "simulations; guard it (atomic/mutex/const) or "
                "annotate with simlint-allow(mutablestatic: reason)"))
    return out


TRACE_OWNER_FILES = (
    "src/common/trace_event.hh",
    "src/common/trace_event.cc",
    "src/nvram/vans_system.hh",
    "src/nvram/vans_system.cc",
)
TRACE_BYVALUE_RE = re.compile(
    r"\bTraceRecorder\s+[A-Za-z_]\w*\s*[;={(]")
TRACE_SMARTPTR_RE = re.compile(
    r"\b(?:std::)?(?:unique_ptr|shared_ptr)\s*<\s*"
    r"(?:vans::)?(?:obs::)?TraceRecorder\s*>")


def rule_tracebyvalue(project):
    out = []
    for sf in project.files:
        if sf.rel in TRACE_OWNER_FILES:
            continue
        ai = project.annots[sf.rel]
        for lineno, code in enumerate(sf.code_lines, 1):
            if (TRACE_BYVALUE_RE.search(code)
                    or TRACE_SMARTPTR_RE.search(code)) and \
                    not ai.allowed("tracebyvalue", lineno):
                out.append(Finding(
                    "tracebyvalue", sf.rel, lineno,
                    "TraceRecorder held by value or by smart pointer "
                    "outside its owner (nvram/vans_system.*): "
                    "components must hold only a raw `TraceRecorder "
                    "*` cached at attach time so the disabled path "
                    "stays one branch"))
    return out


THREADING_OWNER_FILES = (
    "src/common/sharded_kernel.hh",
    "src/common/sharded_kernel.cc",
    "src/common/parallel.hh",
    "src/common/parallel.cc",
    "src/common/check.hh",
    "src/common/check.cc",
    "src/common/logging.cc",
)
THREADING_RE = re.compile(
    r"\bstd::(?:thread|jthread|mutex|recursive_mutex|shared_mutex|"
    r"timed_mutex|condition_variable(?:_any)?|atomic\w*|future|"
    r"promise|async|barrier|latch|semaphore)\b")


def rule_shardshared(project):
    out = []
    for sf in project.files:
        if sf.rel in THREADING_OWNER_FILES:
            continue
        ai = project.annots[sf.rel]
        for lineno, code in enumerate(sf.code_lines, 1):
            tm = THREADING_RE.search(code)
            if tm and not ai.allowed("shardshared", lineno):
                out.append(Finding(
                    "shardshared", sf.rel, lineno,
                    f"{tm.group(0)} outside the concurrency layer: "
                    "cross-shard state must flow through the sharded "
                    "kernel's outbox/barrier merge (or annotate with "
                    "simlint-allow(shardshared: why this sharing is "
                    "deterministic))"))
    return out


# --------------------------------------------------------------- #
# snapshotcover                                                    #
# --------------------------------------------------------------- #

def _collect_bodies(project, sf, rec, names):
    """Concatenated body text of ``rec``'s methods named in
    ``names``, wherever they are defined. None if no body found."""
    text = []
    for _, meth in project.methods_of(sf, rec):
        if meth.name in names and meth.body_lines is not None:
            text.append(meth.body_text())
    return "\n".join(text) if text else None


def _declares(rec, name):
    return any(m.name == name for m in rec.methods)


def _snapshot_members(project, sf, rec, ai):
    """(member, via_record) pairs snapshotcover must see covered."""
    out = []
    for m in rec.members:
        if m.is_static or m.is_ref or m.is_ptr:
            continue
        if ai.is_transient(m.line, m.end_line):
            continue
        if ai.allowed("snapshotcover", m.line, m.end_line):
            continue
        out.append((m, rec))
    for child_path in rec.nested:
        child = sf.records.get(child_path)
        if child is None:
            continue
        if _declares(child, "snapshotTo"):
            continue  # checked on its own
        if ai.allowed("snapshotcover", child.line):
            continue
        if ai.is_transient(child.line):
            continue  # whole nested record is transient by design
        out.extend(_snapshot_members(project, sf, child, ai))
    return out


def rule_snapshotcover(project):
    out = []
    for sf in project.files:
        ai = project.annots[sf.rel]
        for rec in sf.records.values():
            if not (_declares(rec, "snapshotTo")
                    and _declares(rec, "restoreFrom")):
                continue
            if ai.allowed("snapshotcover", rec.line):
                continue
            snap = _collect_bodies(project, sf, rec, ("snapshotTo",))
            rest = _collect_bodies(project, sf, rec, ("restoreFrom",))
            if snap is None or rest is None:
                continue  # interface-only; nothing to analyze
            for member, via in _snapshot_members(project, sf, rec,
                                                 ai):
                pat = re.compile(r"\b" + re.escape(member.name)
                                 + r"\b")
                in_snap = bool(pat.search(snap))
                in_rest = bool(pat.search(rest))
                if in_snap and in_rest:
                    continue
                if not in_snap and not in_rest:
                    what = "snapshotTo or restoreFrom"
                elif in_snap:
                    what = "restoreFrom (captured but never " \
                           "restored: dead snapshot data)"
                else:
                    what = "snapshotTo (restored but never " \
                           "captured: reads another member's bytes)"
                where = rec.path if via is rec else via.path
                out.append(Finding(
                    "snapshotcover", sf.rel, member.line,
                    f"member '{member.name}' of {where} is not "
                    f"referenced in {what}; a forked world silently "
                    "diverges from the warm prototype. Serialize it "
                    "or mark it simlint-transient(reason)"))
    return out


# --------------------------------------------------------------- #
# statscover                                                       #
# --------------------------------------------------------------- #

STAT_MEMBER_RE = re.compile(
    r"\bStat(Scalar|Average|Distribution|Group)\b")
WALK_METHODS = ("metricsInto", "statsInto")
ACCESSOR_SIG_RE = re.compile(
    r"^\s*(?:virtual\s+)?(?:const\s+)?(?:vans::)?StatGroup\s*&")


def _stats_reachable_text(project, sf, rec):
    """Body text that counts as 'reaches the MetricsRegistry walk'
    for members of ``rec``: walk methods and StatGroup& accessors of
    the record itself (inline or out-of-line)."""
    text = []
    for _, meth in project.methods_of(sf, rec):
        if meth.body_lines is None:
            continue
        if meth.name in WALK_METHODS or \
                ACCESSOR_SIG_RE.match(meth.sig):
            text.append(meth.body_text())
    return "\n".join(text)


def rule_statscover(project):
    out = []
    for sf in project.files:
        ai = project.annots[sf.rel]
        for rec in sf.records.values():
            stat_members = [
                m for m in rec.members
                if STAT_MEMBER_RE.search(m.decl)
                and not (m.is_static or m.is_ref or m.is_ptr)]
            if not stat_members:
                continue
            if ai.allowed("statscover", rec.line):
                continue
            # A nested struct's stats may be exported through the
            # enclosing class (Imc::Channel::stats via channelStats).
            chain = [rec]
            parts = rec.path.split("::")
            for i in range(1, len(parts)):
                parent = sf.records.get("::".join(parts[:i]))
                if parent is not None:
                    chain.append(parent)
            text = "\n".join(
                _stats_reachable_text(project, sf, r) for r in chain)
            for m in stat_members:
                if ai.allowed("statscover", m.line, m.end_line):
                    continue
                if re.search(r"\b" + re.escape(m.name) + r"\b",
                             text):
                    continue
                out.append(Finding(
                    "statscover", sf.rel, m.line,
                    f"Stat member '{m.name}' of {rec.path} is not "
                    "reachable from the MetricsRegistry walk: no "
                    "metricsInto/statsInto references it and no "
                    "StatGroup& accessor exposes it, so its counts "
                    "never appear in exported metrics"))
    return out


# --------------------------------------------------------------- #
# layering                                                         #
# --------------------------------------------------------------- #

LAYERS = {
    "common": 0,
    "dram": 1, "nvram": 1, "cpu": 1, "cache": 1, "trace": 1,
    "workloads": 1,
    "lens": 2, "opt": 2, "baselines": 2,
}

# Sanctioned lateral (same-tier) edges; everything else same-tier is
# a violation. The set must stay acyclic -- the cycle check below
# guards the day someone adds the reverse edge.
ALLOWED_LATERAL = {
    ("nvram", "dram"),      # AIT buffer is on-DIMM DRAM
    ("cpu", "cache"),       # core owns its L1/LLC hierarchy
    ("cpu", "trace"),       # core replays trace files
    ("workloads", "trace"), # workloads synthesize trace streams
}


def rule_layering(project):
    out = []
    edges = {}  # (src_dir, dst_dir) -> (rel, line) first witness
    for sf in project.files:
        parts = sf.rel.replace("\\", "/").split("/")
        if len(parts) < 3 or parts[0] != "src":
            continue
        src_dir = parts[1]
        ai = project.annots[sf.rel]
        for lineno, inc in sf.includes:
            dst_dir = inc.split("/")[0] if "/" in inc else src_dir
            if ai.allowed("layering", lineno):
                continue
            if src_dir not in LAYERS:
                out.append(Finding(
                    "layering", sf.rel, lineno,
                    f"directory src/{src_dir} is not in the layer "
                    "map; add it to LAYERS in tools/simlint/rules.py "
                    "with a deliberate tier"))
                continue
            if dst_dir not in LAYERS:
                out.append(Finding(
                    "layering", sf.rel, lineno,
                    f"include target '{inc}' is outside the layered "
                    "src tree"))
                continue
            if src_dir != dst_dir:
                edges.setdefault((src_dir, dst_dir), (sf.rel, lineno))
            if src_dir == dst_dir or dst_dir == "common":
                continue
            if LAYERS[src_dir] > LAYERS[dst_dir]:
                continue
            if LAYERS[src_dir] == LAYERS[dst_dir] and \
                    (src_dir, dst_dir) in ALLOWED_LATERAL:
                continue
            kind = "upward" if LAYERS[dst_dir] > LAYERS[src_dir] \
                else "unsanctioned lateral"
            out.append(Finding(
                "layering", sf.rel, lineno,
                f"{kind} include src/{src_dir} -> src/{dst_dir}: the "
                "layer DAG is common <- {dram, nvram, cpu, cache, "
                "trace, workloads} <- {lens, opt, baselines} (plus "
                "sanctioned lateral edges "
                + ", ".join(sorted(f"{a}->{b}"
                                   for a, b in ALLOWED_LATERAL))
                + ")"))

    # Cycle detection over the observed directory graph.
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
    visiting, done = set(), set()

    def dfs(node, path):
        visiting.add(node)
        for nxt in sorted(graph.get(node, ())):
            if nxt in visiting:
                cyc = path[path.index(nxt):] + [nxt] \
                    if nxt in path else [node, nxt]
                rel, line = edges[(node, nxt)]
                out.append(Finding(
                    "layering", rel, line,
                    "include cycle between src directories: "
                    + " -> ".join(cyc)))
            elif nxt not in done:
                dfs(nxt, path + [nxt])
        visiting.discard(node)
        done.add(node)

    for node in sorted(graph):
        if node not in done:
            dfs(node, [node])
    return out


# --------------------------------------------------------------- #
# hotpath                                                          #
# --------------------------------------------------------------- #

# Methods that run off the event path by construction: building,
# serializing, exporting, attaching observers.
COLD_METHOD_RE = re.compile(
    r"^(snapshotTo|restoreFrom|statsInto|metricsInto|attachTracer|"
    r"dump|build\w*|toChromeJson|writeChromeJson)$")

ALLOC_TYPE_RE = re.compile(
    r"\bstd::(vector|deque|list|forward_list|map|multimap|set|"
    r"multiset|unordered_map|unordered_set|unordered_multimap|"
    r"unordered_multiset|string|basic_string|stringstream|"
    r"ostringstream|istringstream|function)\b")
NEW_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")
MAKE_RE = re.compile(r"\bstd::make_(unique|shared)\b")


def _hot_records(project):
    """{class name: (sf, rec)} for records marked simlint-hot."""
    hot = {}
    for sf in project.files:
        ai = project.annots[sf.rel]
        for rec in sf.records.values():
            if ai.is_hot(rec.line):
                hot[rec.name] = (sf, rec)
    return hot


def _is_alloc_mention(code, m):
    """False when an allocating type is mentioned as a pointer,
    reference, or iterator (binding, not constructing)."""
    i = m.end()
    if i < len(code) and code[i] == "<":
        depth = 0
        while i < len(code):
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
                if depth == 0:
                    i += 1
                    break
            i += 1
    rest = code[i:].lstrip()
    return not (rest.startswith("*") or rest.startswith("&")
                or rest.startswith("::"))


def _scan_hot_body(project, sf, meth, out):
    ai = project.annots[sf.rel]
    for lineno, code in meth.body_lines or ():
        if not code.strip() or ai.allowed("hotpath", lineno):
            continue
        for pat, what in ((ALLOC_TYPE_RE, "allocating std type"),
                          (NEW_RE, "operator new"),
                          (MAKE_RE, "heap-allocating make_*")):
            m = pat.search(code)
            if m and pat is ALLOC_TYPE_RE and \
                    not _is_alloc_mention(code, m):
                continue
            if m:
                out.append(Finding(
                    "hotpath", sf.rel, lineno,
                    f"{what} '{m.group(0)}' in simlint-hot code "
                    f"({meth.owner or '<free>'}::{meth.name}): the "
                    "event path must not allocate per event; hoist "
                    "the storage or annotate with "
                    "simlint-allow(hotpath: reason)"))
    return out


def rule_hotpath(project):
    out = []
    hot = _hot_records(project)
    seen = set()  # (rel, line) de-dup for inline + out-of-line scans

    def scan(sf, meth):
        if meth.body_lines is None:
            return
        key = (sf.rel, meth.line)
        if key in seen:
            return
        seen.add(key)
        cls = meth.owner.split("::")[-1] if meth.owner else ""
        if meth.name == cls or meth.name == "~" + cls or \
                COLD_METHOD_RE.match(meth.name):
            return
        if project.annots[sf.rel].allowed("hotpath", meth.line):
            return
        _scan_hot_body(project, sf, meth, out)

    for name, (sf, rec) in hot.items():
        # std::function anywhere in a hot record's members is the
        # old stdfunction rule, now keyed on the marker.
        ai = project.annots[sf.rel]
        for m in rec.members:
            if "std::function" in m.decl and \
                    not ai.allowed("hotpath", m.line, m.end_line):
                out.append(Finding(
                    "hotpath", sf.rel, m.line,
                    f"std::function member '{m.name}' in simlint-hot "
                    f"record {rec.path}: use InplaceCallback to keep "
                    "event scheduling allocation-free"))
        for owner_sf, meth in project.methods_of(sf, rec):
            scan(owner_sf, meth)

    # Free or per-method simlint-hot markers.
    for sf in project.files:
        ai = project.annots[sf.rel]
        if not ai.hot:
            continue
        for meth in sf.free_methods:
            if ai.is_hot(meth.line) and meth.body_lines is not None:
                key = (sf.rel, meth.line)
                if key not in seen:
                    seen.add(key)
                    _scan_hot_body(project, sf, meth, out)
        for rec in sf.records.values():
            for meth in rec.methods:
                if ai.is_hot(meth.line) and \
                        meth.body_lines is not None:
                    key = (sf.rel, meth.line)
                    if key not in seen:
                        seen.add(key)
                        _scan_hot_body(project, sf, meth, out)
    return out


# --------------------------------------------------------------- #
# reqptr                                                           #
# --------------------------------------------------------------- #

# The pool implementation is the single place allowed to talk about
# request storage; everything else holds RequestHandle values.
REQPTR_OWNER_FILES = (
    "src/common/request_pool.hh",
    "src/common/request_pool.cc",
)
REQPTR_RE = re.compile(
    r"\b(?:std::\s*)?(?:shared_ptr|weak_ptr)\s*<\s*(?:vans::)?"
    r"Request\s*>"
    r"|\bmake_shared\s*<\s*(?:vans::)?Request\s*[>,)]")


def rule_reqptr(project):
    out = []
    for sf in project.files:
        if sf.rel in REQPTR_OWNER_FILES:
            continue
        ai = project.annots[sf.rel]
        for lineno, code in enumerate(sf.code_lines, 1):
            m = REQPTR_RE.search(code)
            if m and not ai.allowed("reqptr", lineno):
                out.append(Finding(
                    "reqptr", sf.rel, lineno,
                    f"'{m.group(0)}' outside the pool "
                    "implementation: requests are pool slots owned "
                    "by RequestPool and addressed by generation-"
                    "checked RequestHandle values -- shared_ptr "
                    "ownership reintroduces a control-block "
                    "allocation and refcount per request on the "
                    "issue path. Hold a RequestHandle (or annotate "
                    "with simlint-allow(reqptr: reason))"))
    return out


# --------------------------------------------------------------- #
# annotation hygiene                                               #
# --------------------------------------------------------------- #

def rule_annotation(project):
    out = []
    for sf in project.files:
        for a in project.annots[sf.rel].malformed:
            out.append(Finding("annotation", sf.rel, a.line, a.error))
    return out


# --------------------------------------------------------------- #
# registry                                                         #
# --------------------------------------------------------------- #

ALL_RULES = {
    "wallclock": (rule_wallclock,
                  "No wall-clock time or ambient randomness in "
                  "simulator code"),
    "mutablestatic": (rule_mutablestatic,
                      "No unguarded mutable statics shared across "
                      "parallel simulations"),
    "tracebyvalue": (rule_tracebyvalue,
                     "TraceRecorder referenced only through a raw "
                     "pointer outside its owner"),
    "shardshared": (rule_shardshared,
                    "Threading primitives only in the concurrency "
                    "layer"),
    "snapshotcover": (rule_snapshotcover,
                      "Every member of a snapshot-capable class is "
                      "serialized in snapshotTo AND restoreFrom, or "
                      "marked simlint-transient"),
    "statscover": (rule_statscover,
                   "Every Stat* member is reachable from the "
                   "MetricsRegistry walk"),
    "layering": (rule_layering,
                 "Include graph respects the layer DAG; cycles and "
                 "upward includes are fatal"),
    "hotpath": (rule_hotpath,
                "No heap allocation in code marked simlint-hot"),
    "reqptr": (rule_reqptr,
               "Requests are addressed by pooled RequestHandle, "
               "never owned via shared_ptr outside the pool"),
    "annotation": (rule_annotation,
                   "simlint suppressions carry a written reason"),
}


def run_rules(files, rule_names=None):
    project = Project(files)
    findings = []
    for name, (fn, _) in ALL_RULES.items():
        if rule_names is None or name in rule_names:
            findings.extend(fn(project))
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.message))
    return findings
