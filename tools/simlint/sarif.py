"""SARIF 2.1.0 output for GitHub code scanning."""

from __future__ import annotations

import json

from . import __version__
from .rules import ALL_RULES

SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
          "master/Schemata/sarif-schema-2.1.0.json")


def to_sarif(findings):
    """Findings as a SARIF log dict (one run, one result each)."""
    rules = [
        {
            "id": name,
            "shortDescription": {"text": desc},
            "defaultConfiguration": {"level": "error"},
        }
        for name, (_, desc) in sorted(ALL_RULES.items())
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.file.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, f.line)},
                },
            }],
        }
        for f in findings
    ]
    return {
        "$schema": SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "version": __version__,
                    "informationUri":
                        "tools/simlint/README -- see DESIGN.md "
                        "'Static analysis'",
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///"},
            },
            "results": results,
        }],
    }


def write_sarif(path, findings):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(to_sarif(findings), f, indent=2, sort_keys=True)
        f.write("\n")
