#!/usr/bin/env python3
"""Seeded-fault check: does snapshotcover catch a real dropped field?

Takes a REAL component (src/dram/controller.{hh,cc}), copies it into
a scratch tree, and deletes one serialization line from snapshotTo
(``sink.u64(dataBusFree);``) -- exactly the bug class the rule
exists for: a member restored but never captured, so a forked world
reads another member's bytes.

Asserts, in order:

  1. the unmodified copy is clean under snapshotcover (the scratch
     tree reproduces the annotated real component faithfully);
  2. after the deletion, snapshotcover reports the dropped member by
     name, on the member's declaration line;
  3. with snapshotcover disabled, the mutated tree reports nothing --
     the detection is attributable to the rule under test.

Python >= 3.8, stdlib only. Exit 0 on success, 1 on failure.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
sys.path.insert(0, str(TOOLS))

from simlint import model, rules  # noqa: E402

REPO = TOOLS.parent
COMPONENT = ("src/dram/controller.hh", "src/dram/controller.cc")
FAULT_LINE = "sink.u64(dataBusFree);"
FAULT_MEMBER = "dataBusFree"


def scan(root, rule_names):
    pairs = sorted(
        (str(p), str(p.relative_to(root)).replace("\\", "/"))
        for g in ("*.cc", "*.hh") for p in (root / "src").rglob(g))
    files = [model.parse_file(p, rel) for p, rel in pairs]
    return rules.run_rules(files, rule_names)


def fmt(findings):
    return "; ".join("%s:%d [%s] %s" % (f.file, f.line, f.rule,
                                        f.message[:70])
                     for f in findings) or "<none>"


def main():
    errors = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        for rel in COMPONENT:
            dst = root / rel
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(str(REPO / rel), str(dst))

        clean = scan(root, {"snapshotcover"})
        if clean:
            errors.append("pristine copy not clean: %s" % fmt(clean))

        cc = root / COMPONENT[1]
        text = cc.read_text(encoding="utf-8")
        seeded = [ln for ln in text.splitlines(True)
                  if ln.strip() != FAULT_LINE]
        if len(seeded) == len(text.splitlines(True)):
            errors.append("fault line %r not found in %s -- update "
                          "FAULT_LINE to match the component"
                          % (FAULT_LINE, COMPONENT[1]))
        cc.write_text("".join(seeded), encoding="utf-8")

        got = scan(root, {"snapshotcover"})
        hits = [f for f in got if f.rule == "snapshotcover"
                and FAULT_MEMBER in f.message]
        if len(got) != 1 or len(hits) != 1:
            errors.append(
                "seeded fault: expected exactly 1 snapshotcover "
                "finding naming %r, got: %s" % (FAULT_MEMBER,
                                                fmt(got)))
        elif "never captured" not in hits[0].message:
            errors.append("seeded fault: wrong direction (the field "
                          "is restored but not captured): %s"
                          % hits[0].message)
        elif hits[0].file != COMPONENT[0]:
            errors.append("seeded fault: finding should anchor on "
                          "the member declaration in %s, got %s:%d"
                          % (COMPONENT[0], hits[0].file,
                             hits[0].line))

        others = set(rules.ALL_RULES) - {"snapshotcover"}
        leaked = [f for f in scan(root, others)
                  if FAULT_MEMBER in f.message]
        if leaked:
            errors.append("rule disabled but the fault still "
                          "reported (attribution broken): %s"
                          % fmt(leaked))

    if errors:
        for e in errors:
            print("FAIL: %s" % e)
        print("simlint_faultcheck: %d failure(s)" % len(errors))
        return 1
    print("simlint_faultcheck: seeded '%s' drop in %s caught by "
          "snapshotcover only: OK" % (FAULT_MEMBER, COMPONENT[1]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
