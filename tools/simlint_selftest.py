#!/usr/bin/env python3
"""Fixture self-test for the simlint rule suite.

For every rule in the catalog (tools/simlint/fixtures/<rule>/):

  1. the fail/ tree yields exactly ONE finding, of that rule;
  2. the fail/ tree yields NOTHING with the rule disabled -- the
     finding is attributed to the rule under test, not a bystander;
  3. the pass/ tree is clean under the FULL suite.

Then one end-to-end pass through the CLI: exit codes, SARIF output
that survives json parsing, and a baseline write/apply round-trip.
Python >= 3.8, stdlib only. Exit 0 on success, 1 on any failure.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
sys.path.insert(0, str(TOOLS))

from simlint import model, rules  # noqa: E402

FIXTURES = TOOLS / "simlint" / "fixtures"
LAUNCHER = TOOLS / "simlint.py"


def scan(root, rule_names=None):
    """Findings for the fixture tree at ``root``."""
    pairs = sorted(
        (str(p), str(p.relative_to(root)).replace("\\", "/"))
        for g in ("*.cc", "*.hh") for p in (root / "src").rglob(g))
    files = [model.parse_file(p, rel) for p, rel in pairs]
    return rules.run_rules(files, rule_names)


def fmt(findings):
    return "; ".join("%s:%d [%s] %s" % (f.file, f.line, f.rule,
                                        f.message[:60])
                     for f in findings) or "<none>"


def check_rule(rule, errors):
    fail_dir = FIXTURES / rule / "fail"
    pass_dir = FIXTURES / rule / "pass"
    for d in (fail_dir, pass_dir):
        if not (d / "src").is_dir():
            errors.append("%s: missing fixture tree %s" % (rule, d))
            return

    got = scan(fail_dir, {rule})
    if len(got) != 1 or got[0].rule != rule:
        errors.append(
            "%s: fail fixture expected exactly 1 %s finding, got: %s"
            % (rule, rule, fmt(got)))

    others = set(rules.ALL_RULES) - {rule}
    leaked = scan(fail_dir, others)
    if leaked:
        errors.append(
            "%s: fail fixture trips OTHER rules (attribution "
            "broken): %s" % (rule, fmt(leaked)))

    clean = scan(pass_dir)
    if clean:
        errors.append("%s: pass fixture not clean under the full "
                      "suite: %s" % (rule, fmt(clean)))


def run_cli(*args):
    proc = subprocess.run(
        [sys.executable, str(LAUNCHER)] + list(args),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    return proc.returncode, proc.stdout


def check_cli(errors):
    pass_root = str(FIXTURES / "layering" / "pass")
    fail_root = str(FIXTURES / "snapshotcover" / "fail")

    rc, out = run_cli("--root", pass_root)
    if rc != 0:
        errors.append("cli: clean tree exited %d: %s" % (rc, out))

    with tempfile.TemporaryDirectory() as tmp:
        sarif_path = Path(tmp) / "findings.sarif"
        rc, out = run_cli("--root", fail_root, "--rules",
                          "snapshotcover", "--sarif",
                          str(sarif_path))
        if rc != 1:
            errors.append("cli: failing tree exited %d (want 1): %s"
                          % (rc, out))
        try:
            doc = json.loads(sarif_path.read_text(encoding="utf-8"))
            results = doc["runs"][0]["results"]
            if len(results) != 1 or \
                    results[0]["ruleId"] != "snapshotcover":
                errors.append("cli: SARIF results wrong: %r"
                              % results)
        except (OSError, KeyError, ValueError) as exc:
            errors.append("cli: SARIF unreadable: %s" % exc)

        base_path = Path(tmp) / "baseline.json"
        rc, out = run_cli("--root", fail_root, "--write-baseline",
                          str(base_path))
        if rc != 0:
            errors.append("cli: --write-baseline exited %d: %s"
                          % (rc, out))
        rc, out = run_cli("--root", fail_root, "--baseline",
                          str(base_path))
        if rc != 0:
            errors.append("cli: baselined tree exited %d (want 0, "
                          "debt suppressed): %s" % (rc, out))


def main():
    errors = []
    for rule in sorted(rules.ALL_RULES):
        check_rule(rule, errors)
    check_cli(errors)
    if errors:
        for e in errors:
            print("FAIL: %s" % e)
        print("simlint_selftest: %d failure(s)" % len(errors))
        return 1
    print("simlint_selftest: %d rules x (fail=1, attribution, "
          "pass=0) + cli end-to-end: OK" % len(rules.ALL_RULES))
    return 0


if __name__ == "__main__":
    sys.exit(main())
